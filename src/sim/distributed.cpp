#include "sim/distributed.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "rpc/channel.hpp"
#include "rpc/frame.hpp"
#include "sim/bounded_queue.hpp"
#include "sim/shard.hpp"
#include "sim/workload.hpp"

namespace dip::sim {

namespace {

using Clock = std::chrono::steady_clock;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ---- Coordinator -----------------------------------------------------------

struct DistributedRunner::Impl {
  struct Worker {
    std::uint64_t id;
    pid_t pid;
    rpc::FrameChannel channel;
    bool alive = true;
    bool ready = false;    // HELLO handshake done.
    bool suspect = false;  // Missed a heartbeat deadline; ranges re-issued.
    bool retired = false;
    bool reaped = false;
    bool deadlineValid = false;
    Clock::time_point deadline{};

    Worker(std::uint64_t id_, pid_t pid_, rpc::FrameChannel channel_)
        : id(id_), pid(pid_), channel(std::move(channel_)) {}
  };

  TrialConfig base;
  DistributedConfig dist;
  std::vector<std::unique_ptr<Worker>> workers;
  std::uint64_t epoch = 0;  // Bumped per runCell; stale PARTIALs never fold.
  std::uint64_t lastReissues = 0;
  std::uint64_t lastDuplicates = 0;
  bool started = false;
  bool shutdownDone = false;

  Impl(TrialConfig base_, DistributedConfig dist_)
      : base(base_), dist(dist_) {
    if (dist.workers == 0) dist.workers = 1;
  }

  unsigned liveCount() const {
    unsigned live = 0;
    for (const auto& w : workers) {
      if (w->alive) ++live;
    }
    return live;
  }

  // Forks the fleet. Called lazily so the parent forks before it has ever
  // created engine threads in this call chain (TrialRunner joins its pool
  // before returning, so earlier in-process runs are fine).
  void ensureStarted() {
    if (started) return;
    started = true;
    std::vector<int> parentFds;
    for (unsigned i = 0; i < dist.workers; ++i) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw std::runtime_error("dipd: socketpair failed");
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        throw std::runtime_error("dipd: fork failed");
      }
      if (pid == 0) {
        // Child: drop every coordinator-side descriptor, become worker i.
        ::close(sv[0]);
        for (int fd : parentFds) ::close(fd);
        FaultPlan fault;
        if (dist.fault.kind != FaultPlan::Kind::kNone && dist.fault.worker == i) {
          fault = dist.fault;
        }
        runWorker(sv[1], dist.threadsPerWorker, dist.beaconTrials,
                  std::max<std::size_t>(1, dist.maxOutstanding), fault);
      }
      ::close(sv[1]);
      setNonBlocking(sv[0]);
      parentFds.push_back(sv[0]);
      workers.push_back(std::make_unique<Worker>(i, pid, rpc::FrameChannel(sv[0])));
    }
  }

  void armDeadline(Worker& w) {
    w.deadline = Clock::now() + std::chrono::milliseconds(dist.timeoutMillis);
    w.deadlineValid = true;
  }

  void markDead(Worker& w, ShardScheduler* sched) {
    if (!w.alive) return;
    w.alive = false;
    w.suspect = false;
    w.channel.close();
    if (w.pid > 0 && !w.reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
      w.reaped = true;
    }
    if (sched != nullptr) sched->reissueWorker(w.id);
  }

  void assignMore(Worker& w, ShardScheduler& sched, const std::string& cell) {
    while (sched.outstandingFor(w.id) < dist.maxOutstanding) {
      const std::optional<SeedRange> range = sched.claim(w.id);
      if (!range) return;
      rpc::AssignMsg msg;
      msg.epoch = epoch;
      msg.rangeIndex = range->index;
      msg.lo = range->lo;
      msg.hi = range->hi;
      msg.masterSeed = base.masterSeed;
      msg.cell = cell;
      if (!w.channel.send(rpc::Verb::kAssign, rpc::encodeAssign(msg))) {
        markDead(w, &sched);
        return;
      }
      armDeadline(w);
    }
  }

  void handleFrame(Worker& w, const rpc::Frame& frame, ShardScheduler* sched,
                   std::vector<TrialOutcome>* all) {
    // Any intact frame proves the worker is alive: rehabilitate it and push
    // its heartbeat deadline out. A wrongly-suspected worker costs duplicate
    // work (its ranges were re-issued), never correctness.
    w.suspect = false;
    armDeadline(w);
    switch (frame.verb) {
      case rpc::Verb::kHello: {
        (void)rpc::decodeHello(frame);
        rpc::HelloAckMsg ack;
        ack.workerId = w.id;
        if (!w.channel.send(rpc::Verb::kHello, rpc::encodeHelloAck(ack))) {
          markDead(w, sched);
          return;
        }
        w.ready = true;
        break;
      }
      case rpc::Verb::kPartial: {
        const rpc::PartialMsg partial = rpc::decodePartial(frame);
        if (!partial.done) break;              // Beacon: liveness only.
        if (sched == nullptr) break;           // No run in progress.
        if (partial.epoch != epoch) break;     // Stale run: drop, never fold.
        const SeedRange& range = sched->range(partial.rangeIndex);
        if (partial.outcomes.size() != range.hi - range.lo) {
          throw rpc::CodecError("outcome count does not match range width");
        }
        // The exactly-once gate: only the FIRST completion of a range folds.
        if (sched->complete(partial.rangeIndex)) {
          std::copy(partial.outcomes.begin(), partial.outcomes.end(),
                    all->begin() + static_cast<std::ptrdiff_t>(range.lo));
        }
        break;
      }
      case rpc::Verb::kRetire: {
        (void)rpc::decodeRetire(frame);
        w.retired = true;
        break;
      }
      default:
        throw rpc::CodecError("unexpected verb from worker");
    }
  }

  void drainFrames(Worker& w, ShardScheduler* sched,
                   std::vector<TrialOutcome>* all) {
    try {
      while (std::optional<rpc::Frame> frame = w.channel.next()) {
        handleFrame(w, *frame, sched, all);
        if (!w.alive) return;
      }
    } catch (const rpc::CodecError&) {
      markDead(w, sched);  // Garbage on the wire: the worker is faulty.
    } catch (const std::out_of_range&) {
      markDead(w, sched);  // Range index no shard carries.
    }
  }

  int pollTimeoutMillis(const ShardScheduler& sched) const {
    const Clock::time_point now = Clock::now();
    std::int64_t best = 50;
    for (const auto& w : workers) {
      if (!w->alive || w->suspect || !w->deadlineValid) continue;
      if (sched.outstandingFor(w->id) == 0) continue;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(w->deadline - now)
              .count();
      best = std::min(best, std::max<std::int64_t>(left, 0));
    }
    return static_cast<int>(best);
  }

  void pollOnce(ShardScheduler* sched, std::vector<TrialOutcome>* all,
                int timeoutMillis) {
    std::vector<pollfd> fds;
    std::vector<Worker*> order;
    for (const auto& w : workers) {
      if (!w->alive) continue;
      fds.push_back(pollfd{w->channel.fd(), POLLIN, 0});
      order.push_back(w.get());
    }
    if (fds.empty()) return;
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             timeoutMillis);
    if (ready <= 0) return;  // Timeout or EINTR: deadlines handle the rest.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = *order[i];
      const bool open = w.channel.readAvailable();
      // Frames buffered ahead of an EOF still count (a worker may deliver
      // its last PARTIAL and exit before we read it).
      drainFrames(w, sched, all);
      if (!open) markDead(w, sched);
    }
  }

  void checkDeadlines(ShardScheduler& sched) {
    const Clock::time_point now = Clock::now();
    for (const auto& wp : workers) {
      Worker& w = *wp;
      if (!w.alive || w.suspect || !w.deadlineValid) continue;
      if (sched.outstandingFor(w.id) == 0) continue;
      if (now >= w.deadline) {
        // Suspect, do not kill: the socket stays open so a slow worker's
        // late completion still arrives — and gets deduped by complete().
        w.suspect = true;
        sched.reissueWorker(w.id);
      }
    }
  }

  void pump(ShardScheduler& sched, const std::string& cell,
            std::vector<TrialOutcome>& all) {
    while (!sched.finished()) {
      if (liveCount() == 0) {
        lastReissues = sched.reissueCount();
        lastDuplicates = sched.duplicateCount();
        throw std::runtime_error("dipd: every worker died before the run finished");
      }
      for (const auto& w : workers) {
        if (w->alive && w->ready && !w->suspect) assignMore(*w, sched, cell);
      }
      pollOnce(&sched, &all, pollTimeoutMillis(sched));
      checkDeadlines(sched);
    }
    lastReissues = sched.reissueCount();
    lastDuplicates = sched.duplicateCount();
  }

  void shutdownImpl() {
    if (!started || shutdownDone) return;
    shutdownDone = true;
    for (const auto& w : workers) {
      if (w->alive && !w->channel.send(rpc::Verb::kRetire)) markDead(*w, nullptr);
    }
    // Await RETIRE acks (draining any straggler PARTIALs) within the grace
    // window, then order SHUTDOWN.
    const Clock::time_point graceEnd =
        Clock::now() + std::chrono::milliseconds(dist.graceMillis);
    for (;;) {
      bool waiting = false;
      for (const auto& w : workers) {
        if (w->alive && !w->retired) waiting = true;
      }
      if (!waiting || Clock::now() >= graceEnd) break;
      pollOnce(nullptr, nullptr, 20);
    }
    for (const auto& w : workers) {
      if (w->alive) w->channel.send(rpc::Verb::kShutdown);
    }
    reapAll();
  }

  void reapAll() {
    const Clock::time_point graceEnd =
        Clock::now() + std::chrono::milliseconds(dist.graceMillis);
    for (const auto& wp : workers) {
      Worker& w = *wp;
      if (w.pid <= 0 || w.reaped) continue;
      for (;;) {
        const pid_t got = ::waitpid(w.pid, nullptr, WNOHANG);
        if (got == w.pid || (got < 0 && errno != EINTR)) break;
        if (Clock::now() >= graceEnd) {
          // Straggler (e.g. a hang-fault worker whose reader is wedged
          // behind a full queue and never sees SHUTDOWN): force it down.
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, nullptr, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      w.reaped = true;
      w.alive = false;
      w.channel.close();
    }
  }
};

DistributedRunner::DistributedRunner(TrialConfig base, DistributedConfig dist)
    : impl_(std::make_unique<Impl>(base, dist)) {}

DistributedRunner::~DistributedRunner() {
  try {
    shutdown();
  } catch (...) {
    // Destructors stay noexcept; reapAll already force-kills stragglers.
  }
}

unsigned DistributedRunner::workers() const { return impl_->dist.workers; }

unsigned DistributedRunner::liveWorkers() const {
  return impl_->started ? impl_->liveCount() : impl_->dist.workers;
}

std::uint64_t DistributedRunner::lastReissues() const { return impl_->lastReissues; }
std::uint64_t DistributedRunner::lastDuplicates() const { return impl_->lastDuplicates; }

TrialStats DistributedRunner::runCell(std::string_view cell,
                                      std::size_t trialLimit,
                                      std::vector<TrialOutcome>* outcomes) {
  const workload::CellInfo* info = workload::findCell(cell);
  if (info == nullptr) {
    throw std::invalid_argument("dipd: unknown workload cell: " + std::string(cell));
  }
  if (impl_->shutdownDone) {
    throw std::runtime_error("dipd: runner already shut down");
  }
  impl_->ensureStarted();
  const std::size_t trials = trialLimit != 0 ? trialLimit : info->trials;
  ++impl_->epoch;
  const Clock::time_point begin = Clock::now();
  std::vector<TrialOutcome> all(trials);
  if (trials > 0) {
    ShardScheduler sched(trials, impl_->dist.grain);
    impl_->pump(sched, std::string(cell), all);
  }
  TrialStats stats = foldOutcomes(all);
  stats.wallSeconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  if (outcomes != nullptr) *outcomes = std::move(all);
  return stats;
}

void DistributedRunner::shutdown() { impl_->shutdownImpl(); }

// ---- Worker ----------------------------------------------------------------

namespace {

struct FaultState {
  FaultPlan plan;
  std::uint64_t executed = 0;
  bool triggered = false;
};

// Checked between beacon-sized chunks, so a trigger that is not a multiple
// of the range width lands mid-range by construction.
void maybeInjectFault(FaultState& fault) {
  if (fault.plan.kind == FaultPlan::Kind::kNone || fault.triggered) return;
  if (fault.executed < fault.plan.afterTrials) return;
  fault.triggered = true;
  switch (fault.plan.kind) {
    case FaultPlan::Kind::kKill:
      std::_Exit(17);
    case FaultPlan::Kind::kHang:
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    case FaultPlan::Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.plan.delayMillis));
      break;
    case FaultPlan::Kind::kNone:
      break;
  }
}

}  // namespace

void runWorker(int fd, unsigned threads, std::uint64_t beaconTrials,
               std::size_t queueCapacity, const FaultPlan& fault) {
  rpc::FrameChannel channel(fd);

  rpc::HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.threads = threads != 0 ? threads : resolveThreads(0);
  if (!channel.send(rpc::Verb::kHello, rpc::encodeHello(hello))) std::_Exit(1);

  std::uint64_t workerId = 0;
  {
    const std::optional<rpc::Frame> ack = channel.recv();
    if (!ack) std::_Exit(1);
    try {
      workerId = rpc::decodeHelloAck(*ack).workerId;
    } catch (const std::exception&) {
      std::_Exit(1);
    }
  }

  // Reader thread: the ONLY thread that reads the socket (the executor is
  // the only writer — reads and writes share no FrameChannel state). The
  // bounded queue is the backpressure contract: when it fills, the reader
  // stops draining the socket and the coordinator's outstanding cap holds.
  BoundedQueue<rpc::AssignMsg> queue(queueCapacity);
  std::thread reader([&channel, &queue] {
    for (;;) {
      std::optional<rpc::Frame> frame;
      try {
        frame = channel.recv();
      } catch (const std::exception&) {
        std::_Exit(1);
      }
      if (!frame) std::_Exit(0);  // Coordinator is gone.
      switch (frame->verb) {
        case rpc::Verb::kAssign: {
          rpc::AssignMsg assign;
          try {
            assign = rpc::decodeAssign(*frame);
          } catch (const std::exception&) {
            std::_Exit(1);
          }
          (void)queue.push(std::move(assign));  // Dropped if retiring.
          break;
        }
        case rpc::Verb::kRetire:
          queue.close();  // Keep reading: SHUTDOWN is still to come.
          break;
        case rpc::Verb::kShutdown:
          std::_Exit(0);
        default:
          std::_Exit(1);
      }
    }
  });

  // Executor: rebuild cells by name (cached across assignments — the daemon
  // serves many runs), execute seed-ranges in beacon-sized chunks.
  FaultState faultState;
  faultState.plan = fault;
  TrialConfig config;
  config.threads = threads;
  std::map<std::string, std::unique_ptr<workload::Cell>, std::less<>> cells;
  std::uint64_t completedRanges = 0;
  for (;;) {
    std::optional<rpc::AssignMsg> job = queue.pop();
    if (!job) break;  // Queue closed and drained: retire.
    auto it = cells.find(job->cell);
    if (it == cells.end()) {
      try {
        it = cells.emplace(job->cell, workload::makeCell(job->cell)).first;
      } catch (const std::exception&) {
        std::_Exit(1);  // Unknown cell: decodeAssign-validated, still fatal.
      }
    }
    const workload::Cell& cell = *it->second;
    config.masterSeed = job->masterSeed;
    const std::uint64_t chunk =
        beaconTrials != 0 ? beaconTrials : (job->hi - job->lo);
    std::vector<TrialOutcome> outcomes;
    outcomes.reserve(static_cast<std::size_t>(job->hi - job->lo));
    for (std::uint64_t lo = job->lo; lo < job->hi;) {
      const std::uint64_t hi = std::min(job->hi, lo + chunk);
      const std::vector<TrialOutcome> part = cell.runRange(lo, hi, config);
      outcomes.insert(outcomes.end(), part.begin(), part.end());
      faultState.executed += part.size();
      lo = hi;
      maybeInjectFault(faultState);
      if (lo < job->hi) {
        rpc::PartialMsg beacon;
        beacon.workerId = workerId;
        beacon.epoch = job->epoch;
        beacon.rangeIndex = job->rangeIndex;
        beacon.done = false;
        if (!channel.send(rpc::Verb::kPartial, rpc::encodePartial(beacon))) {
          std::_Exit(0);
        }
      }
    }
    rpc::PartialMsg done;
    done.workerId = workerId;
    done.epoch = job->epoch;
    done.rangeIndex = job->rangeIndex;
    done.done = true;
    done.outcomes = std::move(outcomes);
    if (!channel.send(rpc::Verb::kPartial, rpc::encodePartial(done))) {
      std::_Exit(0);
    }
    ++completedRanges;
  }

  rpc::RetireMsg ack;
  ack.rangesCompleted = completedRanges;
  channel.send(rpc::Verb::kRetire, rpc::encodeRetire(ack));
  // Park until SHUTDOWN (the reader _exits the process) or SIGKILL.
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace dip::sim
