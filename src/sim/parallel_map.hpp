// Deterministic indexed parallel map — TrialRunner's scheduling contract for
// arbitrary result types.
//
// results[i] = fn(i) for i in [0, count): indices are claimed dynamically
// from a shared counter (load balancing for uneven work items), every result
// lands in its own preallocated slot, and the caller folds slots in index
// order — so the returned vector is a pure function of (count, fn),
// independent of thread count and scheduling. Exceptions from fn are
// captured and the one with the smallest index is rethrown on the caller's
// thread after the batch drains, mirroring TrialRunner::run.
//
// The census sweeps its edge-code chunks through this. Thread workers
// belong HERE: dip-lint's thread-containment rule forbids std::thread
// anywhere else under src/ (library code includes this header; the threads
// stay in src/sim).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/trial_runner.hpp"

namespace dip::sim {

// R must be default-constructible; fn must be safe to invoke concurrently
// from several threads (give each invocation its own workspace, or key all
// state off the index). threads == 0 resolves via DIP_THREADS / hardware
// concurrency, like TrialConfig.
template <typename R, typename Fn>
std::vector<R> parallelMap(std::size_t count, unsigned threads, Fn&& fn) {
  std::vector<R> results(count);
  std::atomic<std::size_t> next{0};

  std::mutex failureLock;
  std::size_t failureIndex = count;
  std::exception_ptr failure;

  auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        results[index] = fn(index);
      } catch (...) {
        std::lock_guard<std::mutex> guard(failureLock);
        if (index < failureIndex) {
          failureIndex = index;
          failure = std::current_exception();
        }
      }
    }
  };

  const unsigned resolved = resolveThreads(threads);
  const unsigned poolSize =
      count == 0 ? 0
                 : static_cast<unsigned>(std::min<std::size_t>(resolved, count));
  if (poolSize <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(poolSize - 1);
    for (unsigned i = 0; i + 1 < poolSize; ++i) pool.emplace_back(worker);
    worker();  // The calling thread is the pool's last member.
    for (std::thread& t : pool) t.join();
  }

  if (failure) std::rethrow_exception(failure);
  return results;
}

}  // namespace dip::sim
