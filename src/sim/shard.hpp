// Seed-range sharding and the coordinator's exactly-once bookkeeping.
//
// ShardScheduler is a plain deterministic state machine — no sockets, no
// clocks, no threads — so the re-issue/dedup logic the fold's correctness
// hangs on is unit-testable in isolation (including the heartbeat-timeout
// re-issue race: a suspected worker's range re-issued to a healthy worker,
// then BOTH completions arriving; exactly one may fold).
//
// Range lifecycle:
//
//   pending --claim--> assigned(worker) --complete--> done
//       ^                    |
//       +---- reissueWorker -+   (worker died or missed its heartbeat;
//                                 the range returns to the pending queue,
//                                 re-issued lowest-index-first)
//
// complete() is the exactly-once gate: the FIRST completion of a range
// wins and returns true (fold it); every later completion of the same
// range — a duplicate from a superseded assignment, a late worker that was
// wrongly suspected — returns false (drop it). Out-of-range indices throw:
// a peer sending them is faulty and the transport layer fails it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace dip::sim {

// Global trial indices [lo, hi) with the range's position in the shard
// order (index 0 covers the lowest trials). The fold concatenates ranges
// by `index`, which is exactly trial-index order.
struct SeedRange {
  std::uint64_t index = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const SeedRange& other) const = default;
};

// Splits [0, trials) into grain-sized ranges (the last may be short).
std::vector<SeedRange> shardRanges(std::uint64_t trials, std::uint64_t grain);

class ShardScheduler {
 public:
  ShardScheduler(std::uint64_t trials, std::uint64_t grain);

  std::uint64_t trials() const { return trials_; }
  std::size_t rangeCount() const { return ranges_.size(); }
  const SeedRange& range(std::uint64_t index) const;

  // Claims the lowest-index issuable range for `worker`; nullopt when
  // nothing is pending (everything is assigned or done).
  std::optional<SeedRange> claim(std::uint64_t worker);

  // Records a completion. True: first completion, fold the outcomes.
  // False: duplicate or stale, drop them. Throws std::out_of_range for an
  // index no range carries.
  bool complete(std::uint64_t rangeIndex);

  // Returns every incomplete range currently assigned to `worker` to the
  // pending queue (worker death or heartbeat timeout). Returns how many
  // ranges were re-queued. Idempotent.
  std::size_t reissueWorker(std::uint64_t worker);

  bool finished() const { return completed_ == ranges_.size(); }
  std::uint64_t completedCount() const { return completed_; }
  std::size_t pendingCount() const { return pending_.size(); }
  // Incomplete ranges currently assigned to `worker`.
  std::size_t outstandingFor(std::uint64_t worker) const;
  // Observability for the fault tier: completions dropped by the
  // exactly-once gate, and ranges ever re-queued by reissueWorker.
  std::uint64_t duplicateCount() const { return duplicates_; }
  std::uint64_t reissueCount() const { return reissued_; }

 private:
  enum class State : std::uint8_t { kPending, kAssigned, kDone };

  std::uint64_t trials_;
  std::vector<SeedRange> ranges_;
  std::vector<State> states_;
  std::vector<std::uint64_t> assignee_;
  std::deque<std::uint64_t> pending_;  // Range indices, lowest first.
  std::uint64_t completed_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reissued_ = 0;
};

}  // namespace dip::sim
