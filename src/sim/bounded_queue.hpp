// Bounded blocking MPMC queue — the backpressure primitive of the dipd
// worker runtime.
//
// A worker's socket-reader thread pushes ASSIGN jobs here and its executor
// pops them. The bound is the backpressure contract: when the queue is
// full the reader blocks, stops draining its socket, and the coordinator's
// per-worker outstanding-range cap keeps the pipeline from running ahead
// of execution. close() ends the stream: pushes fail immediately, pops
// drain whatever is buffered and then return nullopt. The tsan suite
// drives the blocking, shutdown-while-full and drain semantics with real
// concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dip::sim {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  std::size_t capacity() const { return capacity_; }

  // Blocks while the queue is full. Returns false (dropping `value`) when
  // the queue is closed — including a close that arrives mid-wait.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    notEmpty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed.
  bool tryPush(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    notEmpty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. Returns nullopt only when
  // the queue is closed AND drained: items buffered before close() are
  // still delivered, in order.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return value;
  }

  // Ends the stream and wakes every waiter (blocked pushers give up,
  // blocked poppers drain then give up).
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dip::sim
