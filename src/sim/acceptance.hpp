// Acceptance estimation on the trial engine.
//
// Every protocol in src/core exposes the same execution shape
//     RunResult run(const Instance&, Prover&, util::Rng&) const
// (the "instance" is the network graph for Sym/DSym and an instance struct
// for SymInput/GNI). estimateAcceptance below is the parallel, seeded
// replacement for the serial Protocol::estimateAcceptance loops: prover
// factories receive the trial index (use it wherever a per-run seed was
// threaded before), randomness comes from the trial's child stream, and the
// outcome digest fingerprints the run's transcript so acceptance tables are
// regression-checkable bit-for-bit across thread counts.
#pragma once

#include <cstddef>
#include <utility>

#include "core/result.hpp"
#include "net/transcript.hpp"
#include "sim/trial.hpp"
#include "sim/trial_runner.hpp"

namespace dip::sim {

// 64-bit fingerprint of a run: verdict plus the exact per-node bit account.
inline std::uint64_t runDigest(const core::RunResult& result) {
  std::uint64_t digest = result.accepted ? 0x5bd1e995u : 0x1b873593u;
  for (const auto& node : result.transcript.perNode()) {
    digest = digestCombine(digest, node.bitsToProver);
    digest = digestCombine(digest, node.bitsFromProver);
  }
  return digest;
}

// The one trial body both substrates execute: build the trial's prover, run
// the protocol on the trial's counter-derived stream, fingerprint the
// transcript. Exposed so seed-range execution (distributed workers) and
// whole-batch execution (estimateAcceptance) share it verbatim.
template <typename Protocol, typename Instance, typename ProverFactory>
auto acceptanceBody(const Protocol& protocol, const Instance& instance,
                    ProverFactory&& proverFactory) {
  return [&protocol, &instance,
          factory = std::forward<ProverFactory>(proverFactory)](TrialContext& ctx) {
    auto prover = factory(ctx.index);
    core::RunResult result = protocol.run(instance, *prover, ctx.rng);
    return TrialOutcome{result.accepted, result.transcript.maxPerNodeBits(),
                        runDigest(result)};
  };
}

// ProverFactory: std::size_t trialIndex -> owning pointer (or value) whose
// dereference is the prover passed to Protocol::run.
template <typename Protocol, typename Instance, typename ProverFactory>
TrialStats estimateAcceptance(const Protocol& protocol, const Instance& instance,
                              ProverFactory&& proverFactory, std::size_t trials,
                              const TrialConfig& config,
                              std::vector<TrialOutcome>* outcomes = nullptr) {
  TrialRunner runner(config);
  return runner.run(
      trials,
      acceptanceBody(protocol, instance,
                     std::forward<ProverFactory>(proverFactory)),
      outcomes);
}

// Seed-range slice of estimateAcceptance: outcomes for GLOBAL trial indices
// [lo, hi) only, identical entry-for-entry to the same slice of the full
// run (see TrialRunner::runRange).
template <typename Protocol, typename Instance, typename ProverFactory>
std::vector<TrialOutcome> estimateAcceptanceRange(
    const Protocol& protocol, const Instance& instance,
    ProverFactory&& proverFactory, std::uint64_t lo, std::uint64_t hi,
    const TrialConfig& config) {
  TrialRunner runner(config);
  return runner.runRange(lo, hi,
                         acceptanceBody(protocol, instance,
                                        std::forward<ProverFactory>(proverFactory)));
}

// Parallel per-repetition hit estimation for the GNI protocols. HitFn:
// (TrialContext&) -> bool; wrap perRoundHitOnce with any precomputed state
// (e.g. automorphism lists) captured by reference.
template <typename HitFn>
TrialStats estimateHitRate(HitFn&& hitOnce, std::size_t trials,
                           const TrialConfig& config) {
  TrialRunner runner(config);
  return runner.run(trials, [&](TrialContext& ctx) {
    const bool hit = hitOnce(ctx);
    return TrialOutcome{hit, 0, hit ? 0x9e3779b9ull : 0x85ebca6bull};
  });
}

}  // namespace dip::sim
