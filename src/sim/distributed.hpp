// dipd: verification-as-a-service over local worker processes.
//
// DistributedRunner is the coordinator half of the dipd runtime: it forks N
// worker processes connected by socketpair(AF_UNIX, SOCK_STREAM) links,
// shards a cell's trial indices into seed-ranges (ShardScheduler), streams
// ASSIGN frames with bounded per-worker outstanding work, collects PARTIAL
// outcome vectors and folds them with sim::foldOutcomes in global index
// order. The determinism contract is the whole point:
//
//   stdout-visible results are byte-identical to the in-process
//   TrialRunner for ANY worker count, ANY arrival order, and ANY
//   crash/hang/delay pattern the fault plan can express.
//
// That holds because (a) trial outcomes are pure functions of
// (cell, master seed, global index), (b) the coordinator stores outcomes by
// global index and folds once at the end, and (c) ShardScheduler::complete
// is an exactly-once gate — a range re-issued after a heartbeat timeout can
// be completed by two workers, but only the first completion folds.
//
// Failure handling: a worker that misses its heartbeat deadline is marked
// SUSPECT (its ranges re-issue, its socket stays open — a late completion
// is deduped, any frame rehabilitates it); a worker whose socket reaches
// EOF or speaks garbage is DEAD (SIGKILL + reissue). The run fails only
// when every worker is dead.
//
// The worker half (runWorker) never returns: it handshakes, splits into a
// socket-reader thread feeding a BoundedQueue (the backpressure contract)
// and an executor that rebuilds cells by name and runs seed-ranges in
// beacon-sized chunks, then parks until SHUTDOWN. Fault injection
// (kill/hang/delay at a trial threshold) hooks between chunks so a fault
// always lands mid-range.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/trial.hpp"
#include "sim/trial_runner.hpp"

namespace dip::sim {

// Injectable worker failure, for the fault tier. Applies to the worker
// whose id matches `worker`; `afterTrials` counts trials EXECUTED by that
// worker (across ranges), so the trigger lands mid-range whenever it is not
// a multiple of the range width.
struct FaultPlan {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kKill,   // _exit mid-range: coordinator sees EOF, re-issues.
    kHang,   // stop forever mid-range: heartbeat timeout, suspect + re-issue.
    kDelay,  // sleep once mid-range: timeout + re-issue, then the LATE
             // completion still arrives — the exactly-once dedup path.
  };
  Kind kind = Kind::kNone;
  std::uint64_t worker = 0;
  std::uint64_t afterTrials = 0;
  unsigned delayMillis = 0;
};

struct DistributedConfig {
  unsigned workers = 2;
  unsigned threadsPerWorker = 1;  // TrialRunner pool size inside each worker.
  std::uint64_t grain = 16;       // Trials per seed-range.
  unsigned maxOutstanding = 2;    // ASSIGNs in flight per worker (backpressure).
  std::uint64_t beaconTrials = 8; // Worker emits a heartbeat every this many trials.
  unsigned timeoutMillis = 2000;  // Silence beyond this => worker is suspect.
  unsigned graceMillis = 2000;    // Shutdown patience before SIGKILL.
  FaultPlan fault;
};

// Coordinator for a session of distributed cell runs. Workers are forked
// lazily on the first runCell (fork happens while the parent holds no
// engine threads) and live across calls, caching built cells by name —
// the daemon shape: one spawn, many verification requests.
class DistributedRunner {
 public:
  DistributedRunner(TrialConfig base, DistributedConfig dist);
  ~DistributedRunner();  // Implies shutdown().
  DistributedRunner(const DistributedRunner&) = delete;
  DistributedRunner& operator=(const DistributedRunner&) = delete;

  unsigned workers() const;
  unsigned liveWorkers() const;
  // Scheduler counters from the most recent runCell — what the fault tier
  // asserts on: re-issues prove recovery ran, duplicates prove the
  // exactly-once gate dropped a late completion.
  std::uint64_t lastReissues() const;
  std::uint64_t lastDuplicates() const;

  // Runs the named workload cell (all committed trials, or the first
  // trialLimit when trialLimit > 0) across the worker fleet and returns the
  // index-ordered fold. If `outcomes` is non-null it receives the per-trial
  // vector (what the differential suite compares against TrialRunner).
  // Throws std::invalid_argument for unknown cells and std::runtime_error
  // when every worker has died.
  TrialStats runCell(std::string_view cell, std::size_t trialLimit = 0,
                     std::vector<TrialOutcome>* outcomes = nullptr);

  // Graceful teardown: RETIRE each live worker, await acks, SHUTDOWN,
  // reap with SIGKILL after the grace window. Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Worker-process entry point: speaks the dipd protocol on `fd` until
// SHUTDOWN or coordinator EOF, then _exits — it NEVER returns (forked
// children must not fall back into the parent's stack, e.g. gtest).
[[noreturn]] void runWorker(int fd, unsigned threads, std::uint64_t beaconTrials,
                            std::size_t queueCapacity, const FaultPlan& fault);

}  // namespace dip::sim
