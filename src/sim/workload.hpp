// The named trial-workload registry: the bridge between an engine substrate
// and the work it runs.
//
// A distributed run cannot ship a closure across a process boundary, so
// every shardable workload is a NAMED CELL: a protocol + instance + honest
// prover built deterministically from committed seeds, identified by a
// stable string. Both substrates resolve the same name to the same cell:
//
//   - TrialRunner (in-process): Cell::run(config) — the path
//     sim::runThroughputWorkload and the benches use.
//   - DistributedRunner (multi-process): workers receive (cell name,
//     master seed, seed-range) in an ASSIGN frame, rebuild the cell locally
//     via makeCell, and execute Cell::runRange for the global indices.
//
// Because a trial outcome is a pure function of (cell, master seed, global
// trial index) and both paths fold through sim::foldOutcomes in index
// order, the two substrates are byte-identical by construction — the
// differential and fault-injection suites certify it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "sim/trial.hpp"
#include "sim/trial_runner.hpp"

namespace dip::sim::workload {

struct CellInfo {
  std::string_view name;     // Stable identifier, e.g. "sym_dmam_p1".
  std::size_t trials;        // Committed full-cell trial count.
  std::uint64_t seedOffset;  // Cell master seed = engine base seed + offset.
  bool gni;                  // Slow GNI group (vs the fast Sym-family group).
};

// The six committed cells, in table order (the bench_throughput order).
std::span<const CellInfo> cells();

// nullptr when no cell has that name.
const CellInfo* findCell(std::string_view name);

// A constructed cell: owns the protocol/instance/prover state built from
// the cell's committed seeds, exposes the trial body to either substrate.
// Construction is deterministic — two processes that makeCell the same name
// hold value-identical state.
class Cell {
 public:
  virtual ~Cell() = default;
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  const CellInfo& info() const { return info_; }

  // Outcomes for GLOBAL trial indices [lo, hi); requires hi <= info().trials
  // is NOT enforced — ranges address the infinite counter-derived stream,
  // the committed trial count only defines the full-cell table row.
  // config.masterSeed is the engine-level base seed; the cell's committed
  // offset is applied internally (matching bench table conventions).
  virtual std::vector<TrialOutcome> runRange(std::uint64_t lo, std::uint64_t hi,
                                             const TrialConfig& config) const = 0;

  // Full-cell run (or its first trialLimit trials when trialLimit > 0):
  // runRange(0, n) folded through sim::foldOutcomes, wall-clocked.
  TrialStats run(const TrialConfig& config, std::size_t trialLimit = 0,
                 std::vector<TrialOutcome>* outcomes = nullptr) const;

 protected:
  explicit Cell(const CellInfo& info) : info_(info) {}

 private:
  CellInfo info_;
};

// Builds the named cell; throws std::invalid_argument for unknown names.
std::unique_ptr<Cell> makeCell(std::string_view name);

}  // namespace dip::sim::workload
