// The fixed macro-benchmark workload behind bench_throughput.
//
// One function both the bench driver and throughput_determinism_test call:
// a fixed suite of honest-prover acceptance cells, one per protocol, sized
// so a full sweep takes seconds. The deterministic columns of every cell
// (accepts, trials, maxPerNodeBits, digest) are a pure function of the
// cell's master seed — independent of the thread count AND of whether the
// batch hash engine is enabled (the engine changes evaluation strategy,
// never values). wallSeconds is measurement and is excluded from all
// comparisons; trials/sec derived from it feeds BENCH_throughput.json.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/trial.hpp"
#include "sim/trial_runner.hpp"

namespace dip::sim {

struct ThroughputCell {
  std::string protocol;  // Stable identifier, e.g. "sym_dmam_p1".
  TrialStats stats;
  // Engine the cell actually ran with: "batch", "scalar", or
  // "scalar-fallback" (batch requested, but the cell is on the no-win list
  // so the workload pinned it to the scalar path).
  std::string engine;
  double trialsPerSecond() const {
    return stats.wallSeconds > 0.0
               ? static_cast<double>(stats.trials) / stats.wallSeconds
               : 0.0;
  }
};

// True when `protocol` is on the static no-win list: cells whose committed
// baseline shows no batch speedup run the scalar path even when the batch
// engine is globally enabled (values are identical either way, so this only
// changes the evaluation strategy). The list is maintained against
// BENCH_throughput.json: any cell whose speedup drops below 1.0 belongs
// here — tools/check_throughput.py fails the gate for no-win cells that are
// not pinned. Currently every cell wins, so the list is empty.
bool scalarPreferred(std::string_view protocol);

// Which cell groups to run: the four fast Sym-family cells, the two slow
// GNI cells, or (default) all six. The determinism tests split the groups
// so the sanitizer jobs can bound their wall time per test.
struct ThroughputSelection {
  bool fast = true;  // sym_dmam_p1, sym_dam_p2, dsym_dam, sym_input.
  bool gni = true;   // gni_amam, gni_general.
};

// Runs the selected protocol cells. config.masterSeed offsets every cell's
// seed, so distinct base seeds give distinct (but still deterministic)
// workloads; the committed baseline and the determinism tests use
// masterSeed = 0.
std::vector<ThroughputCell> runThroughputWorkload(const TrialConfig& config,
                                                  ThroughputSelection select = {});

}  // namespace dip::sim
