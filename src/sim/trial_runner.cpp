#include "sim/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dip::sim {

unsigned resolveThreads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DIP_THREADS")) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1024) {
      return static_cast<unsigned>(parsed);
    }
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

TrialRunner::TrialRunner(TrialConfig config)
    : config_(config), threads_(resolveThreads(config.threads)) {}

std::vector<TrialOutcome> TrialRunner::runRange(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<TrialOutcome(TrialContext&)>& body) const {
  const std::uint64_t count = hi > lo ? hi - lo : 0;
  std::vector<TrialOutcome> results(count);
  const util::Rng master(config_.masterSeed);

  // Work is claimed from a shared counter (dynamic load balancing — trials
  // can have very different costs, e.g. adaptive-search provers), but every
  // per-trial input and output depends only on the claimed GLOBAL index.
  std::atomic<std::uint64_t> next{lo};

  // First failure by trial index wins, so the surfaced error is stable
  // across schedules too.
  std::mutex failureLock;
  std::uint64_t failureIndex = hi;
  std::exception_ptr failure;

  auto worker = [&] {
    util::Arena arena;  // Per-worker: reset per trial, capacity reused.
    for (;;) {
      const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= hi) return;
      arena.reset();
      TrialContext ctx{static_cast<std::size_t>(index), master.child(index), &arena};
      try {
        results[index - lo] = body(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> guard(failureLock);
        if (index < failureIndex) {
          failureIndex = index;
          failure = std::current_exception();
        }
      }
    }
  };

  const unsigned poolSize = count == 0 ? 0 : static_cast<unsigned>(
      std::min<std::uint64_t>(threads_, count));
  if (poolSize <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(poolSize - 1);
    for (unsigned i = 0; i + 1 < poolSize; ++i) pool.emplace_back(worker);
    worker();  // The calling thread is the pool's last member.
    for (std::thread& t : pool) t.join();
  }

  if (failure) std::rethrow_exception(failure);
  return results;
}

TrialStats TrialRunner::run(std::size_t trials,
                            const std::function<TrialOutcome(TrialContext&)>& body,
                            std::vector<TrialOutcome>* outcomes) const {
  const auto started = std::chrono::steady_clock::now();
  std::vector<TrialOutcome> results = runRange(0, trials, body);
  TrialStats stats = foldOutcomes(results);
  stats.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  if (outcomes) *outcomes = std::move(results);
  return stats;
}

}  // namespace dip::sim
