#include "sim/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dip::sim {

unsigned resolveThreads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DIP_THREADS")) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1024) {
      return static_cast<unsigned>(parsed);
    }
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

TrialRunner::TrialRunner(TrialConfig config)
    : config_(config), threads_(resolveThreads(config.threads)) {}

TrialStats TrialRunner::run(std::size_t trials,
                            const std::function<TrialOutcome(TrialContext&)>& body,
                            std::vector<TrialOutcome>* outcomes) const {
  const auto started = std::chrono::steady_clock::now();
  std::vector<TrialOutcome> results(trials);
  const util::Rng master(config_.masterSeed);

  // Work is claimed from a shared counter (dynamic load balancing — trials
  // can have very different costs, e.g. adaptive-search provers), but every
  // per-trial input and output depends only on the claimed index.
  std::atomic<std::size_t> next{0};

  // First failure by trial index wins, so the surfaced error is stable
  // across schedules too.
  std::mutex failureLock;
  std::size_t failureIndex = trials;
  std::exception_ptr failure;

  auto worker = [&] {
    util::Arena arena;  // Per-worker: reset per trial, capacity reused.
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= trials) return;
      arena.reset();
      TrialContext ctx{index, master.child(index), &arena};
      try {
        results[index] = body(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> guard(failureLock);
        if (index < failureIndex) {
          failureIndex = index;
          failure = std::current_exception();
        }
      }
    }
  };

  const unsigned poolSize = trials == 0 ? 0 : static_cast<unsigned>(
      std::min<std::size_t>(threads_, trials));
  if (poolSize <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(poolSize - 1);
    for (unsigned i = 0; i + 1 < poolSize; ++i) pool.emplace_back(worker);
    worker();  // The calling thread is the pool's last member.
    for (std::thread& t : pool) t.join();
  }

  if (failure) std::rethrow_exception(failure);

  TrialStats stats;
  stats.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    const TrialOutcome& outcome = results[t];
    if (outcome.accepted) ++stats.accepts;
    if (outcome.maxPerNodeBits > stats.maxPerNodeBits) {
      stats.maxPerNodeBits = outcome.maxPerNodeBits;
    }
    stats.digest = digestCombine(stats.digest, outcome.digest);
    stats.digest = digestCombine(stats.digest, outcome.accepted ? 1 : 0);
    stats.digest = digestCombine(stats.digest, outcome.maxPerNodeBits);
  }
  stats.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  if (outcomes) *outcomes = std::move(results);
  return stats;
}

}  // namespace dip::sim
