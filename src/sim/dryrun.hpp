// Structural dry-run bit accounting: exact transcript costs from graph
// structure alone.
//
// For every protocol in the repo the verifier-side charge schedule is a
// function of (n, the hash-family bit widths, and — for GNI — the G1
// degrees and the prover's per-repetition claim profile). None of it
// depends on the prover's search, the sampled seeds, or the hash values:
// the honest prover always answers every challenge, and message fields
// have fixed widths. So the exact per-node transcript costs of a run can
// be computed by a pure graph traversal, with no BigUInt arithmetic and no
// prover search — which is what lets the E1/E2/E3/E5 cost tables extend to
// n = 10^6 where executing the protocol is infeasible.
//
// Everything is templated over the graph representation (dense
// `graph::Graph` or compressed `graph::CsrGraph` — anything with
// `numVertices()`, `numEdges()`, `degree(v)` and `forEachNeighbor`), and a
// dry run on either representation of the same graph produces the same
// report, digest included. `costDigestOf(transcript)` folds a real
// execution's per-node costs the same way, so tests can pin
// dry-run == measured bit-for-bit at small n.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "net/spanning.hpp"
#include "net/transcript.hpp"

namespace dip::sim {

// FNV-1a fold over per-node (bitsToProver, bitsFromProver) pairs in vertex
// order; also tracks the paper's f(n) = max per-node total and the sum.
struct CostFold {
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t digest = kOffset;
  std::size_t maxPerNodeBits = 0;
  std::size_t totalBits = 0;

  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest = (digest ^ ((value >> (8 * i)) & 0xff)) * kPrime;
    }
  }

  void addNode(std::size_t bitsToProver, std::size_t bitsFromProver) {
    mix(bitsToProver);
    mix(bitsFromProver);
    const std::size_t total = bitsToProver + bitsFromProver;
    if (total > maxPerNodeBits) maxPerNodeBits = total;
    totalBits += total;
  }
};

// The same fold applied to a measured transcript (index order) — equals the
// dry-run digest when the schedule model is exact.
std::uint64_t costDigestOf(const net::Transcript& transcript);

struct DryRunReport {
  // Structure (tree height from the BFS tree rooted at 0, the honest
  // prover's choice in every protocol here).
  std::size_t numNodes = 0;
  std::size_t numEdges = 0;
  std::size_t maxDegree = 0;
  std::uint32_t treeHeight = 0;
  // Costs.
  std::size_t maxPerNodeBits = 0;  // The paper's f(n).
  std::size_t totalBits = 0;
  std::uint64_t costDigest = 0;
};

// Bit widths for the three LinearHashFamily protocols. Build from a real
// family (exact identity with a measured run) or from the model formulas
// below (large n, no prime search).
struct SymWidths {
  unsigned idBits = 0;
  std::size_t seedBits = 0;
  std::size_t valueBits = 0;
};

// Widths for GNI (Protocol 4 / E5).
struct GniWidths {
  unsigned idBits = 0;
  std::size_t seedBlockBits = 0;  // gsHash.seedBits() + ell.
  std::size_t innerBits = 0;      // gsHash.innerValueBits().
  std::size_t checkBits = 0;      // checkFamily.seedBits().
  std::size_t repetitions = 0;
};

// Per-repetition claim profile of the prover (the honest prover claims the
// same j's at every node, so these are global booleans). claimed[j] = the
// prover answered repetition j; b[j] = the coin it targeted.
struct GniClaimProfile {
  std::vector<std::uint8_t> claimed;
  std::vector<std::uint8_t> b;
};

// Model widths matching the committed costModel formulas (and, for E1/E2,
// the exact families the benches construct). symDamModelWidths switches to
// a floating-point bit length above `kSymDamExactThreshold` — the exact
// p <= 100 n^(n+2) has ~(n+2) log2 n bits and is infeasible to materialize
// at n = 10^6; the float path is validated against the exact one in tests.
SymWidths symDmamModelWidths(std::size_t n);
SymWidths symDamModelWidths(std::size_t n);
SymWidths dsymDamModelWidths(std::size_t n);
GniWidths gniModelWidths(std::size_t n, std::size_t repetitions);

inline constexpr std::size_t kSymDamExactThreshold = 4096;

namespace detail {

template <typename G>
void fillStructure(const G& g, DryRunReport& report) {
  report.numNodes = g.numVertices();
  report.numEdges = g.numEdges();
  report.maxDegree = 0;
  for (graph::Vertex v = 0; v < report.numNodes; ++v) {
    report.maxDegree = std::max(report.maxDegree, g.degree(v));
  }
  report.treeHeight =
      report.numNodes == 0 ? 0 : net::treeHeight(net::buildBfsTree(g, 0));
}

inline void finish(const CostFold& fold, DryRunReport& report) {
  report.maxPerNodeBits = fold.maxPerNodeBits;
  report.totalBits = fold.totalBits;
  report.costDigest = fold.digest;
}

}  // namespace detail

// Protocol 3 / E1 (Sym, dMAM): M1 root broadcast + per-node tree advice,
// A seed, M2 index echo broadcast + per-node chain pair. Uniform per node.
template <typename G>
DryRunReport dryRunSymDmam(const G& g, const SymWidths& w) {
  DryRunReport report;
  detail::fillStructure(g, report);
  const std::size_t to = w.seedBits;
  const std::size_t from = w.idBits          // M1 broadcast: root.
                           + 3 * w.idBits    // M1: rho_v, t_v, d_v.
                           + w.seedBits      // M2 broadcast: index echo.
                           + 2 * w.valueBits;  // M2: a_v, b_v.
  CostFold fold;
  for (std::size_t v = 0; v < report.numNodes; ++v) fold.addNode(to, from);
  detail::finish(fold, report);
  return report;
}

// Protocol 2 / E3 (Sym, dAM): A seed, M broadcasts the full rho.
template <typename G>
DryRunReport dryRunSymDam(const G& g, const SymWidths& w) {
  DryRunReport report;
  detail::fillStructure(g, report);
  const std::size_t n = report.numNodes;
  const std::size_t to = w.seedBits;
  const std::size_t from = n * w.idBits      // M broadcast: full rho.
                           + w.seedBits      // M broadcast: index echo.
                           + w.idBits        // M broadcast: root.
                           + 2 * w.idBits    // M: t_v, d_v.
                           + 2 * w.valueBits;  // M: a_v, b_v.
  CostFold fold;
  for (std::size_t v = 0; v < n; ++v) fold.addNode(to, from);
  detail::finish(fold, report);
  return report;
}

// DSym / E2 (the promise variant whose sigma is known from the layout).
template <typename G>
DryRunReport dryRunDsymDam(const G& g, const SymWidths& w) {
  DryRunReport report;
  detail::fillStructure(g, report);
  const std::size_t to = w.seedBits;
  const std::size_t from = w.seedBits + w.idBits  // M broadcast: index + root.
                           + 2 * w.idBits         // M: t_v, d_v.
                           + 2 * w.valueBits;     // M: a_v, b_v.
  CostFold fold;
  for (std::size_t v = 0; v < report.numNodes; ++v) fold.addNode(to, from);
  detail::finish(fold, report);
  return report;
}

// Protocol 4 / E5 (GNI, AMAM). The only degree-dependent schedule: for each
// repetition the prover claims with b = 1, node v's M1 message carries its
// closed-G1-neighborhood image, (deg_{G1}(v) + 1) ids. Structure fields
// describe g0 (the network the tree is built on); charges follow g1.
template <typename G>
DryRunReport dryRunGniAmam(const G& g0, const G& g1, const GniWidths& w,
                           const GniClaimProfile& profile) {
  DryRunReport report;
  detail::fillStructure(g0, report);
  const std::size_t n = report.numNodes;
  const std::size_t k = w.repetitions;
  std::size_t numClaimedB1 = 0;
  std::size_t m2Uniform = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!profile.claimed[j]) continue;
    if (profile.b[j] == 1) ++numClaimedB1;
    m2Uniform += w.innerBits + 2 * w.checkBits;
    if (profile.b[j] == 1) m2Uniform += 2 * w.checkBits;
  }
  const std::size_t to = k * w.seedBlockBits  // A1.
                         + w.checkBits;       // A2.
  const std::size_t fromUniform =
      w.idBits + k * w.seedBlockBits + 2 * k  // M1 broadcast.
      + 2 * w.idBits + k * w.idBits           // M1: tree advice + s values.
      + w.checkBits                           // M2 broadcast.
      + m2Uniform;                            // M2: chains.
  CostFold fold;
  for (graph::Vertex v = 0; v < n; ++v) {
    const std::size_t claimBits = numClaimedB1 * (g1.degree(v) + 1) * w.idBits;
    fold.addNode(to, fromUniform + claimBits);
  }
  detail::finish(fold, report);
  return report;
}

// The Theta(n^2) LCP baseline (Goos-Suomela, src/pls/sym_lcp): the
// non-interactive yardstick every table compares against. Advice only, no
// challenges; per-node label = claimed matrix + rho + witness.
template <typename G>
DryRunReport dryRunSymLcp(const G& g, unsigned idBits) {
  DryRunReport report;
  detail::fillStructure(g, report);
  const std::size_t n = report.numNodes;
  const std::size_t from = n * n + n * static_cast<std::size_t>(idBits) + idBits;
  CostFold fold;
  for (std::size_t v = 0; v < n; ++v) fold.addNode(0, from);
  detail::finish(fold, report);
  return report;
}

}  // namespace dip::sim
