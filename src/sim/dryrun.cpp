#include "sim/dryrun.hpp"

#include <cmath>

#include "util/biguint.hpp"
#include "util/bitio.hpp"

namespace dip::sim {

std::uint64_t costDigestOf(const net::Transcript& transcript) {
  CostFold fold;
  for (const net::NodeCost& cost : transcript.perNode()) {
    fold.addNode(cost.bitsToProver, cost.bitsFromProver);
  }
  return fold.digest;
}

SymWidths symDmamModelWidths(std::size_t n) {
  // p in [10 n^3, 100 n^3]: at most bitLength(100 n^3) bits (costModel's
  // bound; the cached family's actual prime can be one bit shorter).
  util::BigUInt pHi = util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, 3);
  const std::size_t hashBits = pHi.bitLength();
  return {util::bitsFor(n), hashBits, hashBits};
}

SymWidths symDamModelWidths(std::size_t n) {
  std::size_t hashBits = 0;
  if (n <= kSymDamExactThreshold) {
    util::BigUInt pHi =
        util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, n + 2);
    hashBits = pHi.bitLength();
  } else {
    // bitLength(100 n^(n+2)) = floor(log2 100 + (n+2) log2 n) + 1. The
    // mantissa error of long-double log2 at n <= 10^9 is far below the
    // distance to the nearest integer for these arguments; the small-n
    // branch is pinned against this one in tests at the threshold.
    const long double bits =
        std::log2(100.0L) +
        static_cast<long double>(n + 2) * std::log2(static_cast<long double>(n));
    hashBits = static_cast<std::size_t>(bits) + 1;
  }
  return {util::bitsFor(n), hashBits, hashBits};
}

SymWidths dsymDamModelWidths(std::size_t n) { return symDmamModelWidths(n); }

GniWidths gniModelWidths(std::size_t n, std::size_t repetitions) {
  // Mirrors GniAmamProtocol::costModel digit for digit (same double
  // accumulation): ell ~ log2(n!) + 3, field prime ~ ell + 2 log2 n + 8
  // bits, check family ~ 3 log2 n + 24 bits.
  double log2Fact = 0.0;
  // dip-lint: allow(determinism-escape) -- fixed-order scalar loop, exact
  // mirror of GniAmamProtocol::costModel's accumulation (same result bit
  // for bit on every platform the tests pin).
  for (std::size_t i = 2; i <= n; ++i) {
    log2Fact += std::log2(static_cast<double>(i));
  }
  const std::size_t ell = static_cast<std::size_t>(log2Fact) + 3;
  const std::size_t fieldBits = ell + 2 * util::bitsFor(n) + 8;
  GniWidths w;
  w.idBits = util::bitsFor(n);
  w.seedBlockBits = 3 * fieldBits + ell;
  w.innerBits = fieldBits;
  w.checkBits = 3 * util::bitsFor(n) + 24;
  w.repetitions = repetitions;
  return w;
}

}  // namespace dip::sim
