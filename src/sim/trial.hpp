// Trial-level result types for the parallel simulation engine.
//
// A "trial" is one independent protocol execution (one prover instance, one
// Rng stream). The engine (trial_runner.hpp) runs batches of trials across
// a thread pool; everything here is the deterministic part of the contract:
// a TrialOutcome is a pure function of (master seed, trial index, instance),
// and TrialStats is the index-ordered fold of the outcomes — so both are
// bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mathutil.hpp"

namespace dip::sim {

// What one trial reports back. `digest` is a 64-bit fingerprint of whatever
// per-trial detail the body wants regression-checked (transcript bits,
// message hashes, ...); the runner folds it into TrialStats::digest in trial
// index order, so any divergence across thread counts or code changes shows
// up as a digest change.
struct TrialOutcome {
  bool accepted = false;
  std::size_t maxPerNodeBits = 0;
  std::uint64_t digest = 0;

  bool operator==(const TrialOutcome& other) const = default;
};

// Aggregate over a batch. All fields except wallSeconds are deterministic
// (wall time is measurement, not simulation — exclude it when comparing).
struct TrialStats {
  std::size_t accepts = 0;
  std::size_t trials = 0;
  std::size_t maxPerNodeBits = 0;  // Max over trials of the per-trial max.
  std::uint64_t digest = 0;        // Index-ordered fold of trial digests.
  double wallSeconds = 0.0;

  double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(accepts) / static_cast<double>(trials);
  }
  util::WilsonInterval interval() const { return util::wilson95(accepts, trials); }

  // Equality of the deterministic fields only (the determinism contract).
  bool sameResults(const TrialStats& other) const {
    return accepts == other.accepts && trials == other.trials &&
           maxPerNodeBits == other.maxPerNodeBits && digest == other.digest;
  }
};

// Order-dependent 64-bit combiner used for the stats digest (Boost-style
// mixing; collisions are irrelevant here, divergence detection is the goal).
inline std::uint64_t digestCombine(std::uint64_t acc, std::uint64_t value) {
  acc ^= value + 0x9E3779B97F4A7C15ull + (acc << 6) + (acc >> 2);
  return acc;
}

// THE index-ordered deterministic merge. Both execution substrates — the
// in-process TrialRunner and the multi-process DistributedRunner — produce a
// per-trial outcome vector ordered by global trial index and fold it through
// this one function, so stats are byte-identical regardless of thread count,
// worker count, or arrival order. wallSeconds is measurement and is set by
// the caller, not here.
inline TrialStats foldOutcomes(const std::vector<TrialOutcome>& outcomes) {
  TrialStats stats;
  stats.trials = outcomes.size();
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.accepted) ++stats.accepts;
    if (outcome.maxPerNodeBits > stats.maxPerNodeBits) {
      stats.maxPerNodeBits = outcome.maxPerNodeBits;
    }
    stats.digest = digestCombine(stats.digest, outcome.digest);
    stats.digest = digestCombine(stats.digest, outcome.accepted ? 1 : 0);
    stats.digest = digestCombine(stats.digest, outcome.maxPerNodeBits);
  }
  return stats;
}

}  // namespace dip::sim
