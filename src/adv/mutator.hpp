// The wire-mutation adversary engine: protocol-agnostic, seeded, structured
// corruption of prover rounds.
//
// The soundness theorems quantify over ALL provers, but hand-written
// cheaters only probe the strategies their author thought of. This engine
// probes the wire itself: a MessageMutator consumes the encoded form of an
// honest (or classically cheating) prover's round — the EncodedRound a real
// network would carry — and applies a structured mutation before the round
// is decoded back and handed to the verifiers. Mutations live at two
// levels:
//
//   * raw bit level (flip/burst/transplant/replay/truncate) — these need no
//     protocol knowledge and attack the serialization surface directly;
//   * typed field level (parent rewrite, distance skew, hash perturbation,
//     root swap) — these go through the per-protocol FieldSurface that each
//     adapter in adapters_wire.hpp implements by decode -> tweak ->
//     re-encode, so the mutation is expressed in the decoder's own type
//     system.
//
// Every mutator is deterministic in the Rng it is handed; the stress driver
// derives that Rng from the trial engine's counter-based child streams, so
// any accepting mutant is reproducible from (master seed, trial index).
//
// Lint contract: every concrete MessageMutator subclass must carry a
// registered self-test seed in mutatorSelfTests() (dip-lint rule
// `mutator-selftest`), and the adv_mutator unit tests replay each seed to
// assert the mutator is deterministic and actually perturbs the round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "util/rng.hpp"

namespace dip::adv {

// Thrown by the protocol adapters when a mutated round no longer decodes
// (the wire codec raised invalid_argument or out_of_range): the cheating
// prover was caught at the serialization boundary. The stress driver counts
// these trials as rejections.
class MutantRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Typed mutation surface for one protocol round. Adapters implement the
// fields their round actually carries; the default "this round has no such
// field" answer makes the calling mutator fall back to a raw bit flip, so a
// field mutator is never a silent no-op on rounds without its field.
// Implementations mutate a typed copy of the message and report dirty();
// the adapter then re-encodes the tweaked message over the raw round.
class FieldSurface {
 public:
  virtual ~FieldSurface() = default;

  // Rewrites one node's spanning-tree parent pointer to a random idBits
  // value (possibly >= n: decoders pass such values through for the
  // decision layer to reject).
  virtual bool rewriteParent(util::Rng& /*rng*/) { return false; }
  // Skews one node's claimed tree distance by +-1 (mod the field width).
  virtual bool skewDistance(util::Rng& /*rng*/) { return false; }
  // Replaces one hash-domain value (chain sum, index echo, check seed) with
  // a fresh random value of the same encoded width.
  virtual bool perturbHashValue(util::Rng& /*rng*/) { return false; }
  // Replaces the broadcast root (or witness) with a random vertex id,
  // consistently at every node — the broadcast stream carries it once.
  virtual bool swapRoot(util::Rng& /*rng*/) { return false; }

  bool dirty() const { return dirty_; }

 protected:
  void markDirty() { dirty_ = true; }

 private:
  bool dirty_ = false;
};

// Everything a mutator may condition on beyond the round payload itself.
struct MutationContext {
  std::size_t roundIndex = 0;   // 0-based prover round within the interaction.
  bool finalRound = true;       // Last prover round (the adaptive surface).
  std::size_t numNodes = 0;
  // 64-bit digest of every verifier challenge the prover has seen so far
  // (0 before the first challenge round). Adapters also fold this into the
  // mutation Rng, so post-challenge mutations are challenge-adaptive — the
  // Theorem 1.3 attack surface.
  std::uint64_t challengeDigest = 0;
  // The previous prover round's encoded form (nullptr in round 0); replay
  // mutators resend it in place of the current round.
  const core::wire::EncodedRound* previousRound = nullptr;
};

class MessageMutator {
 public:
  virtual ~MessageMutator() = default;
  virtual const char* name() const = 0;
  // Mutates `round` in place. `surface` is the typed view of the same round
  // (never owns it; may be nullptr in raw-only harnesses). If the mutator
  // used the surface, the adapter re-encodes the typed message; otherwise
  // the raw payload edit stands.
  virtual void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
                      const MutationContext& ctx, util::Rng& rng) const = 0;
};

// ---- Raw bit-level mutators ----

// Flips exactly one uniformly chosen bit (broadcast or any unicast payload).
class SingleBitFlipMutator final : public MessageMutator {
 public:
  const char* name() const override { return "single-bit-flip"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// Flips a burst of 2..8 uniformly chosen bits.
class BurstBitFlipMutator final : public MessageMutator {
 public:
  const char* name() const override { return "burst-bit-flip"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// Flips one bit of the broadcast stream specifically: broadcast fields
// (root, index echo, claimed/b flags, full rho) are the highest-leverage
// bits on the wire — one flip perturbs every node's copy consistently.
class BroadcastFlipMutator final : public MessageMutator {
 public:
  const char* name() const override { return "broadcast-flip"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// Copies node u's unicast payload over node v's (cross-node advice
// transplant): both payloads are individually well-formed, so this probes
// whether per-node advice is actually bound to its addressee.
class TransplantMutator final : public MessageMutator {
 public:
  const char* name() const override { return "advice-transplant"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// Replays the previous prover round verbatim in place of the current one
// (round 0 falls back to a single bit flip).
class ReplayMutator final : public MessageMutator {
 public:
  const char* name() const override { return "round-replay"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// Truncates one payload to a random proper prefix (message-shortening; the
// decoder must fail cleanly, never read out of bounds).
class TruncateMutator final : public MessageMutator {
 public:
  const char* name() const override { return "payload-truncate"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// ---- Typed field-level mutators (via FieldSurface) ----

class ParentRewriteMutator final : public MessageMutator {
 public:
  const char* name() const override { return "parent-rewrite"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

class DistanceSkewMutator final : public MessageMutator {
 public:
  const char* name() const override { return "distance-skew"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

class HashPerturbMutator final : public MessageMutator {
 public:
  const char* name() const override { return "hash-perturb"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

class RootSwapMutator final : public MessageMutator {
 public:
  const char* name() const override { return "root-swap"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// ---- Adaptive mode ----

// Leaves every committing round untouched and corrupts only the FINAL
// prover round, with randomness re-derived from the challenge digest: the
// commitment is honest, the response adapts to the verifier's coins after
// seeing them — exactly the adaptivity the dAM lower-bound discussion
// (Theorem 1.3's huge hash) defends against.
class AdaptiveReMutator final : public MessageMutator {
 public:
  const char* name() const override { return "adaptive-remutate"; }
  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,
              const MutationContext& ctx, util::Rng& rng) const override;
};

// ---- Registry ----

// The standard adversary battery the stress tier runs: one instance of
// every mutator above, in a fixed order (report rows are keyed by name()).
std::vector<std::unique_ptr<MessageMutator>> standardMutators();

// Factory by name() (nullptr for unknown names); lets tests and repro
// tooling rebuild a specific adversary from a report row.
std::unique_ptr<MessageMutator> makeMutator(const std::string& name);

// Registered self-test seed per mutator class. dip-lint's mutator-selftest
// rule checks that every MessageMutator subclass appears here; the
// adv_mutator tests replay each seed and assert determinism + actual
// perturbation.
struct MutatorSelfTestEntry {
  const char* className;
  const char* mutatorName;  // name() of the instance.
  std::uint64_t seed;
};
const std::vector<MutatorSelfTestEntry>& mutatorSelfTests();

// Raw-bit helpers shared with the tests (bit position indexing covers the
// broadcast stream first, then each unicast stream in node order).
std::size_t totalRoundBits(const core::wire::EncodedRound& round);
void flipRoundBit(core::wire::EncodedRound& round, std::size_t position);

}  // namespace dip::adv
