#include "adv/mutator.hpp"

#include <utility>

#include "util/bitio.hpp"

namespace dip::adv {
namespace {

std::vector<bool> payloadBits(const util::BitWriter& payload) {
  util::BitReader reader(payload);
  std::vector<bool> bits(payload.bitCount());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = reader.readBit();
  return bits;
}

util::BitWriter payloadFromBits(const std::vector<bool>& bits) {
  util::BitWriter writer;
  for (bool bit : bits) writer.writeBit(bit);
  return writer;
}

// BitWriter exposes no mutable bit access, so edits rebuild the payload.
void flipPayloadBit(util::BitWriter& payload, std::size_t position) {
  std::vector<bool> bits = payloadBits(payload);
  bits.at(position) = !bits.at(position);
  payload = payloadFromBits(bits);
}

void truncatePayload(util::BitWriter& payload, std::size_t keepBits) {
  std::vector<bool> bits = payloadBits(payload);
  bits.resize(keepBits);
  payload = payloadFromBits(bits);
}

void flipRandomBit(core::wire::EncodedRound& round, util::Rng& rng) {
  const std::size_t total = totalRoundBits(round);
  if (total == 0) return;
  flipRoundBit(round, rng.nextBelow(total));
}

}  // namespace

std::size_t totalRoundBits(const core::wire::EncodedRound& round) {
  std::size_t total = round.broadcast.bitCount();
  for (const util::BitWriter& payload : round.unicast) total += payload.bitCount();
  return total;
}

void flipRoundBit(core::wire::EncodedRound& round, std::size_t position) {
  if (position < round.broadcast.bitCount()) {
    flipPayloadBit(round.broadcast, position);
    return;
  }
  position -= round.broadcast.bitCount();
  for (util::BitWriter& payload : round.unicast) {
    if (position < payload.bitCount()) {
      flipPayloadBit(payload, position);
      return;
    }
    position -= payload.bitCount();
  }
  throw std::out_of_range("flipRoundBit: position past end of round");
}

void SingleBitFlipMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                                  const MutationContext&, util::Rng& rng) const {
  flipRandomBit(round, rng);
}

void BurstBitFlipMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                                 const MutationContext&, util::Rng& rng) const {
  // Positions are drawn with replacement; a repeat cancels itself, which
  // just makes shorter bursts slightly more likely.
  const std::size_t burst = 2 + rng.nextBelow(7);
  for (std::size_t i = 0; i < burst; ++i) flipRandomBit(round, rng);
}

void BroadcastFlipMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                                  const MutationContext&, util::Rng& rng) const {
  const std::size_t bits = round.broadcast.bitCount();
  if (bits == 0) {
    flipRandomBit(round, rng);
    return;
  }
  flipPayloadBit(round.broadcast, rng.nextBelow(bits));
}

void TransplantMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                               const MutationContext&, util::Rng& rng) const {
  const std::size_t n = round.unicast.size();
  if (n < 2) {
    flipRandomBit(round, rng);
    return;
  }
  const std::size_t u = rng.nextBelow(n);
  std::size_t v = rng.nextBelow(n - 1);
  if (v >= u) ++v;
  round.unicast[v] = round.unicast[u];
}

void ReplayMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                           const MutationContext& ctx, util::Rng& rng) const {
  if (ctx.previousRound == nullptr) {
    flipRandomBit(round, rng);
    return;
  }
  round = *ctx.previousRound;
}

void TruncateMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                             const MutationContext&, util::Rng& rng) const {
  // Pick among payloads that have at least one bit to drop.
  std::vector<util::BitWriter*> candidates;
  if (round.broadcast.bitCount() > 0) candidates.push_back(&round.broadcast);
  for (util::BitWriter& payload : round.unicast) {
    if (payload.bitCount() > 0) candidates.push_back(&payload);
  }
  if (candidates.empty()) return;
  util::BitWriter* target = candidates[rng.nextBelow(candidates.size())];
  truncatePayload(*target, rng.nextBelow(target->bitCount()));
}

void ParentRewriteMutator::mutate(core::wire::EncodedRound& round, FieldSurface* surface,
                                  const MutationContext&, util::Rng& rng) const {
  if (surface == nullptr || !surface->rewriteParent(rng)) flipRandomBit(round, rng);
}

void DistanceSkewMutator::mutate(core::wire::EncodedRound& round, FieldSurface* surface,
                                 const MutationContext&, util::Rng& rng) const {
  if (surface == nullptr || !surface->skewDistance(rng)) flipRandomBit(round, rng);
}

void HashPerturbMutator::mutate(core::wire::EncodedRound& round, FieldSurface* surface,
                                const MutationContext&, util::Rng& rng) const {
  if (surface == nullptr || !surface->perturbHashValue(rng)) flipRandomBit(round, rng);
}

void RootSwapMutator::mutate(core::wire::EncodedRound& round, FieldSurface* surface,
                             const MutationContext&, util::Rng& rng) const {
  if (surface == nullptr || !surface->swapRoot(rng)) flipRandomBit(round, rng);
}

void AdaptiveReMutator::mutate(core::wire::EncodedRound& round, FieldSurface*,
                               const MutationContext& ctx, util::Rng& rng) const {
  // Honest commitment: every round before the final response goes out
  // untouched. The response round is corrupted with randomness keyed on
  // the challenge digest, so the same committed prover answers differently
  // for different verifier coins.
  if (!ctx.finalRound) return;
  util::Rng adaptive = rng.child(ctx.challengeDigest ^ 0xada7'cafe'0000'0001ULL);
  const std::size_t burst = 1 + adaptive.nextBelow(4);
  for (std::size_t i = 0; i < burst; ++i) flipRandomBit(round, adaptive);
}

std::vector<std::unique_ptr<MessageMutator>> standardMutators() {
  std::vector<std::unique_ptr<MessageMutator>> mutators;
  mutators.push_back(std::make_unique<SingleBitFlipMutator>());
  mutators.push_back(std::make_unique<BurstBitFlipMutator>());
  mutators.push_back(std::make_unique<BroadcastFlipMutator>());
  mutators.push_back(std::make_unique<TransplantMutator>());
  mutators.push_back(std::make_unique<ReplayMutator>());
  mutators.push_back(std::make_unique<TruncateMutator>());
  mutators.push_back(std::make_unique<ParentRewriteMutator>());
  mutators.push_back(std::make_unique<DistanceSkewMutator>());
  mutators.push_back(std::make_unique<HashPerturbMutator>());
  mutators.push_back(std::make_unique<RootSwapMutator>());
  mutators.push_back(std::make_unique<AdaptiveReMutator>());
  return mutators;
}

std::unique_ptr<MessageMutator> makeMutator(const std::string& name) {
  for (std::unique_ptr<MessageMutator>& mutator : standardMutators()) {
    if (name == mutator->name()) return std::move(mutator);
  }
  return nullptr;
}

// dip-lint (mutator-selftest) checks each MessageMutator subclass appears in
// exactly this macro form; the adv_mutator tests replay every entry.
#define DIP_MUTATOR_SELF_TEST(ClassName, mutatorName, seed) \
  MutatorSelfTestEntry { #ClassName, mutatorName, seed }

const std::vector<MutatorSelfTestEntry>& mutatorSelfTests() {
  static const std::vector<MutatorSelfTestEntry> entries = {
      DIP_MUTATOR_SELF_TEST(SingleBitFlipMutator, "single-bit-flip", 0xE141),
      DIP_MUTATOR_SELF_TEST(BurstBitFlipMutator, "burst-bit-flip", 0xE142),
      DIP_MUTATOR_SELF_TEST(BroadcastFlipMutator, "broadcast-flip", 0xE143),
      DIP_MUTATOR_SELF_TEST(TransplantMutator, "advice-transplant", 0xE144),
      DIP_MUTATOR_SELF_TEST(ReplayMutator, "round-replay", 0xE145),
      DIP_MUTATOR_SELF_TEST(TruncateMutator, "payload-truncate", 0xE146),
      DIP_MUTATOR_SELF_TEST(ParentRewriteMutator, "parent-rewrite", 0xE147),
      DIP_MUTATOR_SELF_TEST(DistanceSkewMutator, "distance-skew", 0xE148),
      DIP_MUTATOR_SELF_TEST(HashPerturbMutator, "hash-perturb", 0xE149),
      DIP_MUTATOR_SELF_TEST(RootSwapMutator, "root-swap", 0xE14A),
      DIP_MUTATOR_SELF_TEST(AdaptiveReMutator, "adaptive-remutate", 0xE14B),
  };
  return entries;
}

#undef DIP_MUTATOR_SELF_TEST

}  // namespace dip::adv
