// Per-protocol wire-mutation adapters.
//
// Each Mutant*Prover wraps a base prover (honest or classically cheating)
// and pushes every round it produces through the real wire codec:
//
//     typed message -> encode -> MUTATE (raw bits and/or typed surface)
//                   -> decode -> hand the decoded mutant to run()
//
// so the protocol's verifiers — and its DIP_AUDIT charge cross-checks —
// see exactly what a tampering prover could put on the wire, nothing more
// (mutations that no longer decode throw MutantRejected: caught at the
// serialization boundary, counted as rejections by the stress driver).
//
// Two invariants the adapters maintain:
//   * The base prover always sees its OWN honest earlier rounds, never the
//     mutated ones (a cheater knows what it actually sent; base provers are
//     not hardened against out-of-range fields the way verifiers are).
//   * Post-challenge rounds draw their mutation randomness from a stream
//     keyed on a digest of the verifier's challenge payloads, so mutation
//     decisions may depend on the verifier's coins (the adaptive surface;
//     AdaptiveReMutator is built around this).
//
// "wire" in this file's name is load-bearing: dip-lint's uncharged-wire
// rule allows wire::encode* calls only in wire modules (and DIP_AUDIT
// blocks) — these adapters ARE the wire layer of the adversary engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adv/mutator.hpp"
#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "core/wire.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::adv {

// 64-bit digest of an encoded payload (length + bytes, order-dependent).
// Used by the adapters to key adaptive mutation streams on challenges.
std::uint64_t foldPayload(std::uint64_t acc, const util::BitWriter& payload);

class MutantSymDmamProver final : public core::SymDmamProver {
 public:
  MutantSymDmamProver(std::unique_ptr<core::SymDmamProver> base,
                      const MessageMutator& mutator,
                      const hash::LinearHashFamily& family, util::Rng rng);
  core::SymDmamFirstMessage firstMessage(const graph::Graph& g) override;
  core::SymDmamSecondMessage secondMessage(
      const graph::Graph& g, const core::SymDmamFirstMessage& first,
      const std::vector<util::BigUInt>& challenges) override;

 private:
  std::unique_ptr<core::SymDmamProver> base_;
  const MessageMutator& mutator_;
  const hash::LinearHashFamily& family_;
  util::Rng rng_;
  core::SymDmamFirstMessage honestFirst_;
  core::wire::EncodedRound firstRound_;  // Mutated M1 as sent (replay source).
};

class MutantSymDamProver final : public core::SymDamProver {
 public:
  MutantSymDamProver(std::unique_ptr<core::SymDamProver> base,
                     const MessageMutator& mutator,
                     const hash::LinearHashFamily& family, util::Rng rng);
  core::SymDamMessage respond(const graph::Graph& g,
                              const std::vector<util::BigUInt>& challenges) override;

 private:
  std::unique_ptr<core::SymDamProver> base_;
  const MessageMutator& mutator_;
  const hash::LinearHashFamily& family_;
  util::Rng rng_;
};

class MutantDSymProver final : public core::DSymProver {
 public:
  MutantDSymProver(std::unique_ptr<core::DSymProver> base,
                   const MessageMutator& mutator,
                   const hash::LinearHashFamily& family, util::Rng rng);
  core::DSymMessage respond(const graph::Graph& g,
                            const std::vector<util::BigUInt>& challenges) override;

 private:
  std::unique_ptr<core::DSymProver> base_;
  const MessageMutator& mutator_;
  const hash::LinearHashFamily& family_;
  util::Rng rng_;
};

class MutantSymInputProver final : public core::SymInputProver {
 public:
  MutantSymInputProver(std::unique_ptr<core::SymInputProver> base,
                       const MessageMutator& mutator,
                       const hash::LinearHashFamily& family, util::Rng rng);
  core::SymInputFirstMessage firstMessage(const core::SymInputInstance& instance) override;
  core::SymInputSecondMessage secondMessage(
      const core::SymInputInstance& instance, const core::SymInputFirstMessage& first,
      const std::vector<util::BigUInt>& challenges) override;

 private:
  std::unique_ptr<core::SymInputProver> base_;
  const MessageMutator& mutator_;
  const hash::LinearHashFamily& family_;
  util::Rng rng_;
  core::SymInputFirstMessage honestFirst_;
  core::wire::EncodedRound firstRound_;
};

class MutantGniProver final : public core::GniProver {
 public:
  MutantGniProver(std::unique_ptr<core::GniProver> base, const MessageMutator& mutator,
                  const core::GniParams& params, util::Rng rng);
  core::GniFirstMessage firstMessage(
      const core::GniInstance& instance,
      const std::vector<std::vector<core::GniChallenge>>& challenges) override;
  core::GniSecondMessage secondMessage(
      const core::GniInstance& instance,
      const std::vector<std::vector<core::GniChallenge>>& challenges,
      const core::GniFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) override;

 private:
  std::unique_ptr<core::GniProver> base_;
  const MessageMutator& mutator_;
  const core::GniParams& params_;
  util::Rng rng_;
  core::GniFirstMessage honestFirst_;
  // M2's wire format is keyed on M1's claimed/b flags AS THE VERIFIERS SAW
  // THEM, i.e. the decoded mutant — kept here for the M2 encode/decode.
  core::GniFirstMessage mutantFirst_;
  core::wire::EncodedRound firstRound_;
};

class MutantGniGeneralProver final : public core::GniGeneralProver {
 public:
  MutantGniGeneralProver(std::unique_ptr<core::GniGeneralProver> base,
                         const MessageMutator& mutator,
                         const core::GniGeneralParams& params, util::Rng rng);
  core::GniGenFirstMessage firstMessage(
      const core::GniInstance& instance,
      const std::vector<std::vector<core::GniChallenge>>& challenges) override;
  core::GniGenSecondMessage secondMessage(
      const core::GniInstance& instance,
      const std::vector<std::vector<core::GniChallenge>>& challenges,
      const core::GniGenFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) override;

 private:
  std::unique_ptr<core::GniGeneralProver> base_;
  const MessageMutator& mutator_;
  const core::GniGeneralParams& params_;
  util::Rng rng_;
  core::GniGenFirstMessage honestFirst_;
  core::GniGenFirstMessage mutantFirst_;
  core::wire::EncodedRound firstRound_;
};

}  // namespace dip::adv
