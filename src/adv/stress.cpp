#include "adv/stress.hpp"

#include <memory>
#include <utility>

#include "adv/adapters_wire.hpp"
#include "adv/mutator.hpp"
#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "sim/trial_runner.hpp"
#include "util/primes.hpp"

namespace dip::adv {
namespace {

// Outcome sentinel for trials whose mutant died at the decoder. Rejection
// IS the verdict (accepted = false); the digest tags the trial so the cell
// can report how many mutants never even reached the verifiers.
constexpr sim::TrialOutcome kMutantRejectedOutcome{false, 0, 0x4D75'7452'656A'6374ULL};

// The adapter's private mutation stream within a trial (everything else in
// the trial draws from ctx.rng directly).
constexpr std::uint64_t kAdapterStream = 0x4D55;

sim::TrialOutcome outcomeOf(const core::RunResult& result) {
  return {result.accepted, result.transcript.maxPerNodeBits(), sim::runDigest(result)};
}

// Shared cell loop: one TrialRunner batch per mutator, seeds derived as
// masterSeed -> protocolIndex -> mutatorIndex -> trialIndex.
template <typename RunTrial>
SoundnessStressReport runBattery(const char* protocolName, std::size_t numNodes,
                                 std::uint64_t protocolIndex,
                                 const StressOptions& options, RunTrial&& runTrial) {
  SoundnessStressReport report;
  report.protocol = protocolName;
  report.numNodes = numNodes;
  report.masterSeed = options.masterSeed;

  const std::vector<std::unique_ptr<MessageMutator>> mutators = standardMutators();
  const std::uint64_t protocolSeed =
      sim::digestCombine(options.masterSeed, protocolIndex);
  for (std::size_t m = 0; m < mutators.size(); ++m) {
    sim::TrialConfig config;
    config.masterSeed = sim::digestCombine(protocolSeed, m);
    config.threads = options.threads;
    sim::TrialRunner runner(config);
    std::vector<sim::TrialOutcome> outcomes;
    sim::TrialStats stats = runner.run(
        options.trialsPerMutator,
        [&](sim::TrialContext& ctx) -> sim::TrialOutcome {
          try {
            return runTrial(*mutators[m], ctx);
          } catch (const MutantRejected&) {
            return kMutantRejectedOutcome;
          }
        },
        &outcomes);
    MutatorCell cell;
    cell.mutator = mutators[m]->name();
    cell.stats = stats;
    for (const sim::TrialOutcome& outcome : outcomes) {
      if (outcome == kMutantRejectedOutcome) ++cell.decodeRejected;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

// Instance derivation stream for a protocol entry (independent of the
// per-mutator trial streams).
util::Rng instanceRng(const StressOptions& options, std::uint64_t protocolIndex) {
  return util::Rng(sim::digestCombine(options.masterSeed, protocolIndex))
      .child(0x1257a9ce);
}

}  // namespace

std::size_t SoundnessStressReport::totalTrials() const {
  std::size_t total = 0;
  for (const MutatorCell& cell : cells) total += cell.stats.trials;
  return total;
}

std::size_t SoundnessStressReport::totalAccepts() const {
  std::size_t total = 0;
  for (const MutatorCell& cell : cells) total += cell.stats.accepts;
  return total;
}

std::size_t SoundnessStressReport::totalDecodeRejected() const {
  std::size_t total = 0;
  for (const MutatorCell& cell : cells) total += cell.decodeRejected;
  return total;
}

// Protocol 1 on a rigid graph: the base prover already commits to a fake
// rho (the strongest classic cheater), and the mutator tampers on top.
SoundnessStressReport stressSymDmam(const StressOptions& options) {
  const std::size_t n = 8;
  util::Rng rng = instanceRng(options, 0);
  core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  return runBattery("sym_dmam", n, 0, options,
                    [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
                      auto base = std::make_unique<core::CheatingRhoProver>(
                          protocol.family(),
                          core::CheatingRhoProver::Strategy::kRandomPermutation,
                          ctx.index);
                      MutantSymDmamProver prover(std::move(base), mutator,
                                                 protocol.family(),
                                                 ctx.rng.child(kAdapterStream));
                      return outcomeOf(protocol.run(rigid, prover, ctx.rng));
                    });
}

// Protocol 2 on a rigid graph: the adaptive collision searcher plus wire
// tampering (the challenge-adaptive surface of the dAM model).
SoundnessStressReport stressSymDam(const StressOptions& options) {
  const std::size_t n = 8;
  util::Rng rng = instanceRng(options, 1);
  core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  return runBattery("sym_dam", n, 1, options,
                    [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
                      auto base = std::make_unique<core::AdaptiveCollisionProver>(
                          protocol.family(), 25, ctx.index);
                      MutantSymDamProver prover(std::move(base), mutator,
                                                protocol.family(),
                                                ctx.rng.child(kAdapterStream));
                      return outcomeOf(protocol.run(rigid, prover, ctx.rng));
                    });
}

// DSym on a mismatched-sides NO instance: honest play is the optimal
// cheating strategy here, so the mutators probe whether tampering can do
// better than the forced messages.
SoundnessStressReport stressDSym(const StressOptions& options) {
  const std::size_t side = 6;
  util::Rng rng = instanceRng(options, 2);
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  core::DSymDamProtocol protocol(
      layout,
      hash::LinearHashFamily(
          util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
          static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
  graph::Graph f = graph::randomRigidConnected(side, rng);
  graph::Graph fOther = graph::randomRigidConnected(side, rng);
  while (fOther == f) fOther = graph::randomRigidConnected(side, rng);
  graph::Graph no = graph::dsymNoInstance(f, fOther, 1);
  return runBattery("dsym_dam", layout.numVertices, 2, options,
                    [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
                      auto base = std::make_unique<core::CheatingDSymProver>(
                          layout, protocol.family());
                      MutantDSymProver prover(std::move(base), mutator,
                                              protocol.family(),
                                              ctx.rng.child(kAdapterStream));
                      return outcomeOf(protocol.run(no, prover, ctx.rng));
                    });
}

// Input-symmetry protocol on a rigid input: the fake-rho cheater must also
// fabricate neighbor claims, giving the mutators a claims surface the
// network-symmetry protocols lack.
SoundnessStressReport stressSymInput(const StressOptions& options) {
  const std::size_t n = 8;
  util::Rng rng = instanceRng(options, 3);
  core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));
  core::SymInputInstance instance{graph::randomConnected(n, n / 2, rng),
                                  graph::randomRigidConnected(n, rng)};
  return runBattery(
      "sym_input", n, 3, options,
      [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
        auto base = std::make_unique<core::CheatingSymInputProver>(
            protocol.family(),
            core::CheatingSymInputProver::Strategy::kFakeRhoHonestClaims, ctx.index);
        MutantSymInputProver prover(std::move(base), mutator, protocol.family(),
                                    ctx.rng.child(kAdapterStream));
        return outcomeOf(protocol.run(instance, prover, ctx.rng));
      });
}

// GNI dAMAM on an isomorphic (NO) instance: the honest prover is the
// optimal cheater (its claim rate is the soundness error), mutators tamper
// with the two Merlin rounds around it.
SoundnessStressReport stressGniAmam(const StressOptions& options) {
  const std::size_t n = 6;
  util::Rng rng = instanceRng(options, 4);
  core::GniAmamProtocol protocol(core::GniParams::choose(n, rng));
  core::GniInstance instance = core::gniNoInstance(n, rng);
  return runBattery("gni_amam", n, 4, options,
                    [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
                      auto base =
                          std::make_unique<core::HonestGniProver>(protocol.params());
                      MutantGniProver prover(std::move(base), mutator,
                                             protocol.params(),
                                             ctx.rng.child(kAdapterStream));
                      return outcomeOf(protocol.run(instance, prover, ctx.rng));
                    });
}

// General GNI on an isomorphic symmetric instance (n = 4: the automorphism
// enumeration makes larger NO instances orders of magnitude slower).
SoundnessStressReport stressGniGeneral(const StressOptions& options) {
  const std::size_t n = 4;
  util::Rng rng = instanceRng(options, 5);
  core::GniGeneralProtocol protocol(core::GniGeneralParams::choose(n, rng));
  core::GniInstance instance = core::gniGeneralNoInstance(n, rng);
  return runBattery(
      "gni_general", n, 5, options,
      [&](const MessageMutator& mutator, sim::TrialContext& ctx) {
        auto base = std::make_unique<core::HonestGniGeneralProver>(protocol.params());
        MutantGniGeneralProver prover(std::move(base), mutator, protocol.params(),
                                      ctx.rng.child(kAdapterStream));
        return outcomeOf(protocol.run(instance, prover, ctx.rng));
      });
}

const std::vector<StressProtocolEntry>& stressProtocols() {
  static const std::vector<StressProtocolEntry> entries = {
      {"sym_dmam", &stressSymDmam},   {"sym_dam", &stressSymDam},
      {"dsym_dam", &stressDSym},      {"sym_input", &stressSymInput},
      {"gni_amam", &stressGniAmam},   {"gni_general", &stressGniGeneral},
  };
  return entries;
}

}  // namespace dip::adv
