#include "adv/adapters_wire.hpp"

#include <stdexcept>
#include <utility>

#include "core/gni_general_wire.hpp"
#include "core/gni_wire.hpp"
#include "core/sym_input_wire.hpp"
#include "sim/trial.hpp"
#include "util/bitio.hpp"

namespace dip::adv {
namespace {

// Runs a decode callback, converting codec rejections (malformed mutant)
// into MutantRejected. Anything else — in particular logic_error — is a
// bug in the engine or the codecs and propagates.
template <typename DecodeFn>
auto decodeOrReject(const char* label, DecodeFn&& decode) {
  try {
    return decode();
  } catch (const std::invalid_argument& e) {
    throw MutantRejected(std::string(label) + ": " + e.what());
  } catch (const std::out_of_range& e) {
    throw MutantRejected(std::string(label) + ": " + e.what());
  }
}

// The per-round mutation stream: a pure function of the adapter's seed, the
// round index and everything the prover has seen from the verifier so far
// (the challenge digest), so post-challenge mutations are adaptive.
util::Rng roundStream(const util::Rng& base, const MutationContext& ctx) {
  return base.child(sim::digestCombine(ctx.challengeDigest, ctx.roundIndex));
}

graph::Vertex randomId(util::Rng& rng, unsigned idBits) {
  return static_cast<graph::Vertex>(rng.nextBits(idBits));
}

std::uint32_t skewedDistance(std::uint32_t dist, unsigned idBits, util::Rng& rng) {
  const std::uint64_t mask = (idBits >= 64) ? ~0ull : ((1ull << idBits) - 1);
  const std::uint64_t delta = rng.nextBool() ? 1 : mask;  // mask == -1 mod 2^idBits.
  return static_cast<std::uint32_t>((dist + delta) & mask);
}

// ---- Typed surfaces (one per round shape) ----

class SymDmamFirstSurface final : public FieldSurface {
 public:
  SymDmamFirstSurface(core::SymDmamFirstMessage message, std::size_t n)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)) {}
  const core::SymDmamFirstMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.parent[rng.nextBelow(n_)] = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    graph::Vertex v = static_cast<graph::Vertex>(rng.nextBelow(n_));
    message_.dist[v] = skewedDistance(message_.dist[v], idBits_, rng);
    markDirty();
    return true;
  }
  bool swapRoot(util::Rng& rng) override {
    message_.rootPerNode.assign(n_, randomId(rng, idBits_));
    markDirty();
    return true;
  }

 private:
  core::SymDmamFirstMessage message_;
  std::size_t n_;
  unsigned idBits_;
};

class SymDmamSecondSurface final : public FieldSurface {
 public:
  SymDmamSecondSurface(core::SymDmamSecondMessage message,
                       const hash::LinearHashFamily& family)
      : message_(std::move(message)), family_(family) {}
  const core::SymDmamSecondMessage& message() const { return message_; }

  bool perturbHashValue(util::Rng& rng) override {
    const std::size_t n = message_.a.size();
    switch (rng.nextBelow(3)) {
      case 0:
        message_.indexPerNode.assign(n, rng.nextBigBits(family_.seedBits()));
        break;
      case 1:
        message_.a[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
      default:
        message_.b[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
    }
    markDirty();
    return true;
  }

 private:
  core::SymDmamSecondMessage message_;
  const hash::LinearHashFamily& family_;
};

class SymDamSurface final : public FieldSurface {
 public:
  SymDamSurface(core::SymDamMessage message, std::size_t n,
                const hash::LinearHashFamily& family)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)),
        family_(family) {}
  const core::SymDamMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.parent[rng.nextBelow(n_)] = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    graph::Vertex v = static_cast<graph::Vertex>(rng.nextBelow(n_));
    message_.dist[v] = skewedDistance(message_.dist[v], idBits_, rng);
    markDirty();
    return true;
  }
  bool perturbHashValue(util::Rng& rng) override {
    switch (rng.nextBelow(3)) {
      case 0:
        message_.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
        break;
      case 1:
        message_.a[rng.nextBelow(n_)] = rng.nextBigBits(family_.valueBits());
        break;
      default:
        message_.b[rng.nextBelow(n_)] = rng.nextBigBits(family_.valueBits());
        break;
    }
    markDirty();
    return true;
  }
  bool swapRoot(util::Rng& rng) override {
    message_.rootPerNode.assign(n_, randomId(rng, idBits_));
    markDirty();
    return true;
  }

 private:
  core::SymDamMessage message_;
  std::size_t n_;
  unsigned idBits_;
  const hash::LinearHashFamily& family_;
};

class DSymSurface final : public FieldSurface {
 public:
  DSymSurface(core::DSymMessage message, std::size_t n,
              const hash::LinearHashFamily& family)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)),
        family_(family) {}
  const core::DSymMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.parent[rng.nextBelow(n_)] = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    graph::Vertex v = static_cast<graph::Vertex>(rng.nextBelow(n_));
    message_.dist[v] = skewedDistance(message_.dist[v], idBits_, rng);
    markDirty();
    return true;
  }
  bool perturbHashValue(util::Rng& rng) override {
    switch (rng.nextBelow(3)) {
      case 0:
        message_.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
        break;
      case 1:
        message_.a[rng.nextBelow(n_)] = rng.nextBigBits(family_.valueBits());
        break;
      default:
        message_.b[rng.nextBelow(n_)] = rng.nextBigBits(family_.valueBits());
        break;
    }
    markDirty();
    return true;
  }
  bool swapRoot(util::Rng& rng) override {
    message_.rootPerNode.assign(n_, randomId(rng, idBits_));
    markDirty();
    return true;
  }

 private:
  core::DSymMessage message_;
  std::size_t n_;
  unsigned idBits_;
  const hash::LinearHashFamily& family_;
};

class SymInputFirstSurface final : public FieldSurface {
 public:
  SymInputFirstSurface(core::SymInputFirstMessage message, std::size_t n)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)) {}
  const core::SymInputFirstMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.parent[rng.nextBelow(n_)] = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    graph::Vertex v = static_cast<graph::Vertex>(rng.nextBelow(n_));
    message_.dist[v] = skewedDistance(message_.dist[v], idBits_, rng);
    markDirty();
    return true;
  }
  // The broadcast witness w (rho(w) != w) plays the root's role here.
  bool swapRoot(util::Rng& rng) override {
    message_.witnessPerNode.assign(n_, randomId(rng, idBits_));
    markDirty();
    return true;
  }

 private:
  core::SymInputFirstMessage message_;
  std::size_t n_;
  unsigned idBits_;
};

class SymInputSecondSurface final : public FieldSurface {
 public:
  SymInputSecondSurface(core::SymInputSecondMessage message,
                        const hash::LinearHashFamily& family)
      : message_(std::move(message)), family_(family) {}
  const core::SymInputSecondMessage& message() const { return message_; }

  bool perturbHashValue(util::Rng& rng) override {
    const std::size_t n = message_.a.size();
    switch (rng.nextBelow(5)) {
      case 0:
        message_.indexPerNode.assign(n, rng.nextBigBits(family_.seedBits()));
        break;
      case 1:
        message_.a[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
      case 2:
        message_.b[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
      case 3:
        message_.consC[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
      default:
        message_.consT[rng.nextBelow(n)] = rng.nextBigBits(family_.valueBits());
        break;
    }
    markDirty();
    return true;
  }

 private:
  core::SymInputSecondMessage message_;
  const hash::LinearHashFamily& family_;
};

class GniFirstSurface final : public FieldSurface {
 public:
  GniFirstSurface(core::GniFirstMessage message, std::size_t n, std::size_t ell)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)), ell_(ell) {}
  const core::GniFirstMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.perNode[rng.nextBelow(n_)].parent = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    core::GniM1PerNode& m1 = message_.perNode[rng.nextBelow(n_)];
    m1.dist = skewedDistance(m1.dist, idBits_, rng);
    markDirty();
    return true;
  }
  // The hash-domain value of this round is the challenge echo: replace one
  // repetition's target y consistently at every node (the broadcast stream
  // carries it once), probing the root's echo-equality check.
  bool perturbHashValue(util::Rng& rng) override {
    const std::size_t k = message_.perNode[0].echo.size();
    if (k == 0) return false;
    const std::size_t j = rng.nextBelow(k);
    util::BigUInt y = rng.nextBigBits(ell_);
    for (core::GniM1PerNode& m1 : message_.perNode) m1.echo[j].y = y;
    markDirty();
    return true;
  }
  bool swapRoot(util::Rng& rng) override {
    graph::Vertex root = randomId(rng, idBits_);
    for (core::GniM1PerNode& m1 : message_.perNode) m1.root = root;
    markDirty();
    return true;
  }

 private:
  core::GniFirstMessage message_;
  std::size_t n_;
  unsigned idBits_;
  std::size_t ell_;
};

class GniSecondSurface final : public FieldSurface {
 public:
  GniSecondSurface(core::GniSecondMessage message, const core::GniParams& params,
                   const std::vector<std::uint8_t>& claimedFlags)
      : message_(std::move(message)), params_(params), claimedFlags_(claimedFlags) {}
  const core::GniSecondMessage& message() const { return message_; }

  bool perturbHashValue(util::Rng& rng) override {
    // Prefer a claimed repetition's chain value (unclaimed entries never hit
    // the wire); fall back to the broadcast check seed when nothing is claimed.
    std::vector<std::size_t> claimed;
    for (std::size_t j = 0; j < claimedFlags_.size(); ++j) {
      if (claimedFlags_[j]) claimed.push_back(j);
    }
    const std::size_t n = message_.perNode.size();
    if (claimed.empty() || rng.nextBelow(4) == 0) {
      util::BigUInt seed = rng.nextBigBits(params_.checkFamily.seedBits());
      for (core::GniM2PerNode& m2 : message_.perNode) m2.checkSeed = seed;
      markDirty();
      return true;
    }
    const std::size_t j = claimed[rng.nextBelow(claimed.size())];
    core::GniM2PerNode& m2 = message_.perNode[rng.nextBelow(n)];
    if (rng.nextBool()) {
      m2.h[j] = rng.nextBigBits(params_.gsHash.innerValueBits());
    } else {
      m2.permS[j] = rng.nextBigBits(params_.checkFamily.seedBits());
    }
    markDirty();
    return true;
  }

 private:
  core::GniSecondMessage message_;
  const core::GniParams& params_;
  const std::vector<std::uint8_t>& claimedFlags_;
};

class GniGenFirstSurface final : public FieldSurface {
 public:
  GniGenFirstSurface(core::GniGenFirstMessage message, std::size_t n, std::size_t ell)
      : message_(std::move(message)), n_(n), idBits_(util::bitsFor(n)), ell_(ell) {}
  const core::GniGenFirstMessage& message() const { return message_; }

  bool rewriteParent(util::Rng& rng) override {
    message_.perNode[rng.nextBelow(n_)].parent = randomId(rng, idBits_);
    markDirty();
    return true;
  }
  bool skewDistance(util::Rng& rng) override {
    core::GniGenM1PerNode& m1 = message_.perNode[rng.nextBelow(n_)];
    m1.dist = skewedDistance(m1.dist, idBits_, rng);
    markDirty();
    return true;
  }
  bool perturbHashValue(util::Rng& rng) override {
    const std::size_t k = message_.perNode[0].echo.size();
    if (k == 0) return false;
    const std::size_t j = rng.nextBelow(k);
    util::BigUInt y = rng.nextBigBits(ell_);
    for (core::GniGenM1PerNode& m1 : message_.perNode) m1.echo[j].y = y;
    markDirty();
    return true;
  }
  bool swapRoot(util::Rng& rng) override {
    graph::Vertex root = randomId(rng, idBits_);
    for (core::GniGenM1PerNode& m1 : message_.perNode) m1.root = root;
    markDirty();
    return true;
  }

 private:
  core::GniGenFirstMessage message_;
  std::size_t n_;
  unsigned idBits_;
  std::size_t ell_;
};

class GniGenSecondSurface final : public FieldSurface {
 public:
  GniGenSecondSurface(core::GniGenSecondMessage message,
                      const core::GniGeneralParams& params,
                      const std::vector<std::uint8_t>& claimedFlags)
      : message_(std::move(message)), params_(params), claimedFlags_(claimedFlags) {}
  const core::GniGenSecondMessage& message() const { return message_; }

  bool perturbHashValue(util::Rng& rng) override {
    std::vector<std::size_t> claimed;
    for (std::size_t j = 0; j < claimedFlags_.size(); ++j) {
      if (claimedFlags_[j]) claimed.push_back(j);
    }
    const std::size_t n = message_.perNode.size();
    if (claimed.empty() || rng.nextBelow(4) == 0) {
      util::BigUInt seed = rng.nextBigBits(params_.checkFamily.seedBits());
      for (core::GniGenM2PerNode& m2 : message_.perNode) m2.checkSeed = seed;
      markDirty();
      return true;
    }
    const std::size_t j = claimed[rng.nextBelow(claimed.size())];
    core::GniGenM2PerNode& m2 = message_.perNode[rng.nextBelow(n)];
    switch (rng.nextBelow(3)) {
      case 0:
        m2.h[j] = rng.nextBigBits(params_.gsHash.innerValueBits());
        break;
      case 1:
        m2.permS[j] = rng.nextBigBits(params_.checkFamily.seedBits());
        break;
      default:
        m2.autR[j] = rng.nextBigBits(params_.checkFamily.seedBits());
        break;
    }
    markDirty();
    return true;
  }

 private:
  core::GniGenSecondMessage message_;
  const core::GniGeneralParams& params_;
  const std::vector<std::uint8_t>& claimedFlags_;
};

std::uint64_t digestLinearChallenges(const std::vector<util::BigUInt>& challenges,
                                     const hash::LinearHashFamily& family) {
  std::uint64_t digest = 0x1ce5'0000'0000'0001ULL;
  for (const util::BigUInt& challenge : challenges) {
    digest = foldPayload(digest, core::wire::encodeChallenge(challenge, family));
  }
  return digest;
}

std::uint64_t digestGniChallenges(
    const std::vector<std::vector<core::GniChallenge>>& challenges,
    const hash::EpsApiHash& gsHash, std::size_t ell) {
  std::uint64_t digest = 0x1ce5'0000'0000'0002ULL;
  for (const std::vector<core::GniChallenge>& perNode : challenges) {
    digest = foldPayload(digest, core::wire::encodeGniChallenges(perNode, gsHash, ell));
  }
  return digest;
}

}  // namespace

std::uint64_t foldPayload(std::uint64_t acc, const util::BitWriter& payload) {
  acc = sim::digestCombine(acc, payload.bitCount());
  for (std::uint8_t byte : payload.bytes()) acc = sim::digestCombine(acc, byte);
  return acc;
}

// ---- SymDmam (dMAM: M1, A, M2) ----

MutantSymDmamProver::MutantSymDmamProver(std::unique_ptr<core::SymDmamProver> base,
                                         const MessageMutator& mutator,
                                         const hash::LinearHashFamily& family,
                                         util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), family_(family), rng_(rng) {}

core::SymDmamFirstMessage MutantSymDmamProver::firstMessage(const graph::Graph& g) {
  const std::size_t n = g.numVertices();
  honestFirst_ = base_->firstMessage(g);
  core::wire::EncodedRound round = core::wire::encodeSymDmamFirst(honestFirst_, n);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = false;
  ctx.numNodes = n;
  util::Rng stream = roundStream(rng_, ctx);
  SymDmamFirstSurface surface(honestFirst_, n);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) round = core::wire::encodeSymDmamFirst(surface.message(), n);
  firstRound_ = round;
  return decodeOrReject("SymDmam/M1",
                        [&] { return core::wire::decodeSymDmamFirst(round, n); });
}

core::SymDmamSecondMessage MutantSymDmamProver::secondMessage(
    const graph::Graph& g, const core::SymDmamFirstMessage& /*first*/,
    const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = g.numVertices();
  core::SymDmamSecondMessage honest = base_->secondMessage(g, honestFirst_, challenges);
  core::wire::EncodedRound round = core::wire::encodeSymDmamSecond(honest, n, family_);
  MutationContext ctx;
  ctx.roundIndex = 1;
  ctx.finalRound = true;
  ctx.numNodes = n;
  ctx.challengeDigest = digestLinearChallenges(challenges, family_);
  ctx.previousRound = &firstRound_;
  util::Rng stream = roundStream(rng_, ctx);
  SymDmamSecondSurface surface(std::move(honest), family_);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeSymDmamSecond(surface.message(), n, family_);
  }
  return decodeOrReject("SymDmam/M2", [&] {
    return core::wire::decodeSymDmamSecond(round, n, family_);
  });
}

// ---- SymDam (dAM: A, M) ----

MutantSymDamProver::MutantSymDamProver(std::unique_ptr<core::SymDamProver> base,
                                       const MessageMutator& mutator,
                                       const hash::LinearHashFamily& family,
                                       util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), family_(family), rng_(rng) {}

core::SymDamMessage MutantSymDamProver::respond(
    const graph::Graph& g, const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = g.numVertices();
  core::SymDamMessage honest = base_->respond(g, challenges);
  core::wire::EncodedRound round = core::wire::encodeSymDam(honest, n, family_);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = true;
  ctx.numNodes = n;
  ctx.challengeDigest = digestLinearChallenges(challenges, family_);
  util::Rng stream = roundStream(rng_, ctx);
  SymDamSurface surface(std::move(honest), n, family_);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeSymDam(surface.message(), n, family_);
  }
  return decodeOrReject("SymDam/M",
                        [&] { return core::wire::decodeSymDam(round, n, family_); });
}

// ---- DSym (dAM: A, M) ----

MutantDSymProver::MutantDSymProver(std::unique_ptr<core::DSymProver> base,
                                   const MessageMutator& mutator,
                                   const hash::LinearHashFamily& family, util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), family_(family), rng_(rng) {}

core::DSymMessage MutantDSymProver::respond(const graph::Graph& g,
                                            const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = g.numVertices();
  core::DSymMessage honest = base_->respond(g, challenges);
  core::wire::EncodedRound round = core::wire::encodeDSym(honest, n, family_);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = true;
  ctx.numNodes = n;
  ctx.challengeDigest = digestLinearChallenges(challenges, family_);
  util::Rng stream = roundStream(rng_, ctx);
  DSymSurface surface(std::move(honest), n, family_);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeDSym(surface.message(), n, family_);
  }
  return decodeOrReject("DSym/M",
                        [&] { return core::wire::decodeDSym(round, n, family_); });
}

// ---- SymInput (dMAM: M1, A, M2) ----

MutantSymInputProver::MutantSymInputProver(std::unique_ptr<core::SymInputProver> base,
                                           const MessageMutator& mutator,
                                           const hash::LinearHashFamily& family,
                                           util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), family_(family), rng_(rng) {}

core::SymInputFirstMessage MutantSymInputProver::firstMessage(
    const core::SymInputInstance& instance) {
  const std::size_t n = instance.network.numVertices();
  honestFirst_ = base_->firstMessage(instance);
  core::wire::EncodedRound round = core::wire::encodeSymInputFirst(honestFirst_, instance);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = false;
  ctx.numNodes = n;
  util::Rng stream = roundStream(rng_, ctx);
  SymInputFirstSurface surface(honestFirst_, n);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeSymInputFirst(surface.message(), instance);
  }
  firstRound_ = round;
  return decodeOrReject("SymInput/M1", [&] {
    return core::wire::decodeSymInputFirst(round, instance);
  });
}

core::SymInputSecondMessage MutantSymInputProver::secondMessage(
    const core::SymInputInstance& instance, const core::SymInputFirstMessage& /*first*/,
    const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = instance.network.numVertices();
  core::SymInputSecondMessage honest =
      base_->secondMessage(instance, honestFirst_, challenges);
  core::wire::EncodedRound round = core::wire::encodeSymInputSecond(honest, n, family_);
  MutationContext ctx;
  ctx.roundIndex = 1;
  ctx.finalRound = true;
  ctx.numNodes = n;
  ctx.challengeDigest = digestLinearChallenges(challenges, family_);
  ctx.previousRound = &firstRound_;
  util::Rng stream = roundStream(rng_, ctx);
  SymInputSecondSurface surface(std::move(honest), family_);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeSymInputSecond(surface.message(), n, family_);
  }
  return decodeOrReject("SymInput/M2", [&] {
    return core::wire::decodeSymInputSecond(round, n, family_);
  });
}

// ---- GNI (dAMAM: A1, M1, A2, M2) ----

MutantGniProver::MutantGniProver(std::unique_ptr<core::GniProver> base,
                                 const MessageMutator& mutator,
                                 const core::GniParams& params, util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), params_(params), rng_(rng) {}

core::GniFirstMessage MutantGniProver::firstMessage(
    const core::GniInstance& instance,
    const std::vector<std::vector<core::GniChallenge>>& challenges) {
  const std::size_t n = instance.g0.numVertices();
  honestFirst_ = base_->firstMessage(instance, challenges);
  core::wire::EncodedRound round =
      core::wire::encodeGniFirst(honestFirst_, instance, params_);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = false;
  ctx.numNodes = n;
  ctx.challengeDigest = digestGniChallenges(challenges, params_.gsHash, params_.ell);
  util::Rng stream = roundStream(rng_, ctx);
  GniFirstSurface surface(honestFirst_, n, params_.ell);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeGniFirst(surface.message(), instance, params_);
  }
  firstRound_ = round;
  mutantFirst_ = decodeOrReject("Gni/M1", [&] {
    return core::wire::decodeGniFirst(round, instance, params_);
  });
  return mutantFirst_;
}

core::GniSecondMessage MutantGniProver::secondMessage(
    const core::GniInstance& instance,
    const std::vector<std::vector<core::GniChallenge>>& challenges,
    const core::GniFirstMessage& /*first*/,
    const std::vector<util::BigUInt>& checkChallenges) {
  // M2's wire layout is keyed on the claimed/b flags the VERIFIERS hold —
  // the decoded mutant M1 — while the base prover answers for what it
  // actually committed to (its honest first message).
  core::GniSecondMessage honest =
      base_->secondMessage(instance, challenges, honestFirst_, checkChallenges);
  core::wire::EncodedRound round =
      core::wire::encodeGniSecond(honest, mutantFirst_, instance, params_);
  MutationContext ctx;
  ctx.roundIndex = 1;
  ctx.finalRound = true;
  ctx.numNodes = instance.g0.numVertices();
  std::uint64_t digest = digestGniChallenges(challenges, params_.gsHash, params_.ell);
  digest = sim::digestCombine(digest,
                              digestLinearChallenges(checkChallenges, params_.checkFamily));
  ctx.challengeDigest = digest;
  ctx.previousRound = &firstRound_;
  util::Rng stream = roundStream(rng_, ctx);
  GniSecondSurface surface(std::move(honest), params_, mutantFirst_.perNode[0].claimed);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeGniSecond(surface.message(), mutantFirst_, instance, params_);
  }
  return decodeOrReject("Gni/M2", [&] {
    return core::wire::decodeGniSecond(round, mutantFirst_, instance, params_);
  });
}

// ---- GNI general (dAMAM: A1, M1, A2, M2) ----

MutantGniGeneralProver::MutantGniGeneralProver(
    std::unique_ptr<core::GniGeneralProver> base, const MessageMutator& mutator,
    const core::GniGeneralParams& params, util::Rng rng)
    : base_(std::move(base)), mutator_(mutator), params_(params), rng_(rng) {}

core::GniGenFirstMessage MutantGniGeneralProver::firstMessage(
    const core::GniInstance& instance,
    const std::vector<std::vector<core::GniChallenge>>& challenges) {
  const std::size_t n = instance.g0.numVertices();
  honestFirst_ = base_->firstMessage(instance, challenges);
  core::wire::EncodedRound round =
      core::wire::encodeGniGenFirst(honestFirst_, instance, params_);
  MutationContext ctx;
  ctx.roundIndex = 0;
  ctx.finalRound = false;
  ctx.numNodes = n;
  ctx.challengeDigest = digestGniChallenges(challenges, params_.gsHash, params_.ell);
  util::Rng stream = roundStream(rng_, ctx);
  GniGenFirstSurface surface(honestFirst_, n, params_.ell);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round = core::wire::encodeGniGenFirst(surface.message(), instance, params_);
  }
  firstRound_ = round;
  mutantFirst_ = decodeOrReject("GniGen/M1", [&] {
    return core::wire::decodeGniGenFirst(round, instance, params_);
  });
  return mutantFirst_;
}

core::GniGenSecondMessage MutantGniGeneralProver::secondMessage(
    const core::GniInstance& instance,
    const std::vector<std::vector<core::GniChallenge>>& challenges,
    const core::GniGenFirstMessage& /*first*/,
    const std::vector<util::BigUInt>& checkChallenges) {
  core::GniGenSecondMessage honest =
      base_->secondMessage(instance, challenges, honestFirst_, checkChallenges);
  core::wire::EncodedRound round =
      core::wire::encodeGniGenSecond(honest, mutantFirst_, instance, params_);
  MutationContext ctx;
  ctx.roundIndex = 1;
  ctx.finalRound = true;
  ctx.numNodes = instance.g0.numVertices();
  std::uint64_t digest = digestGniChallenges(challenges, params_.gsHash, params_.ell);
  digest = sim::digestCombine(digest,
                              digestLinearChallenges(checkChallenges, params_.checkFamily));
  ctx.challengeDigest = digest;
  ctx.previousRound = &firstRound_;
  util::Rng stream = roundStream(rng_, ctx);
  GniGenSecondSurface surface(std::move(honest), params_, mutantFirst_.perNode[0].claimed);
  mutator_.mutate(round, &surface, ctx, stream);
  if (surface.dirty()) {
    round =
        core::wire::encodeGniGenSecond(surface.message(), mutantFirst_, instance, params_);
  }
  return decodeOrReject("GniGen/M2", [&] {
    return core::wire::decodeGniGenSecond(round, mutantFirst_, instance, params_);
  });
}

}  // namespace dip::adv
