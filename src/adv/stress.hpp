// The soundness stress tier: drives the standard mutator battery against a
// soundness instance of every protocol and certifies the paper's <= 1/3
// cheating bound with Wilson intervals.
//
// Each protocol entry builds its instance, its base (classically cheating
// or honest-on-NO) prover and its Mutant* adapter deterministically from
// StressOptions::masterSeed, then runs trialsPerMutator trials per mutator
// on the TrialRunner. Trial t of mutator m draws everything from
// Rng(digestCombine(digestCombine(masterSeed, protocolIndex), m)).child(t),
// so any accepting mutant is reproducible from the printed master seed
// alone — thread count never changes a report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/trial.hpp"
#include "util/mathutil.hpp"

namespace dip::adv {

struct StressOptions {
  // 96 trials x 11 mutators = 1056 trials per protocol (the full profile);
  // CI's quick gate drops this to a handful per mutator.
  std::size_t trialsPerMutator = 96;
  std::uint64_t masterSeed = 0xE14;
  unsigned threads = 0;  // TrialConfig semantics: 0 = DIP_THREADS / hardware.
};

// One row of a report: the battery outcome for a single mutator.
struct MutatorCell {
  std::string mutator;             // MessageMutator::name().
  sim::TrialStats stats;           // accepts == verifier-fooling successes.
  std::size_t decodeRejected = 0;  // Mutants caught at the wire boundary.
};

struct SoundnessStressReport {
  std::string protocol;
  std::size_t numNodes = 0;
  std::uint64_t masterSeed = 0;
  std::vector<MutatorCell> cells;

  std::size_t totalTrials() const;
  std::size_t totalAccepts() const;
  std::size_t totalDecodeRejected() const;
  util::WilsonInterval overall() const {
    return util::wilson95(totalAccepts(), totalTrials());
  }
  // The certification the acceptance criteria ask for: the 95% Wilson upper
  // bound on overall mutant success stays under the soundness error.
  bool soundnessCertified(double bound = 1.0 / 3.0) const {
    return overall().high <= bound;
  }
};

using StressFn = SoundnessStressReport (*)(const StressOptions&);

struct StressProtocolEntry {
  const char* name;
  StressFn run;
};

// All six protocols, in a fixed order (the protocol index feeds the
// per-protocol seed derivation, so this order is part of the repro recipe).
const std::vector<StressProtocolEntry>& stressProtocols();

// Individual entries (exposed for targeted tests).
SoundnessStressReport stressSymDmam(const StressOptions& options);
SoundnessStressReport stressSymDam(const StressOptions& options);
SoundnessStressReport stressDSym(const StressOptions& options);
SoundnessStressReport stressSymInput(const StressOptions& options);
SoundnessStressReport stressGniAmam(const StressOptions& options);
SoundnessStressReport stressGniGeneral(const StressOptions& options);

}  // namespace dip::adv
