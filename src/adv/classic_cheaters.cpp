#include "adv/classic_cheaters.hpp"

#include <memory>
#include <utility>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/biguint.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::adv {
namespace {

sim::TrialConfig cellConfig(const sim::TrialConfig& base, std::uint64_t seed) {
  sim::TrialConfig config = base;
  config.masterSeed = seed;
  return config;
}

constexpr double kSoundnessError = 1.0 / 3.0;

}  // namespace

std::vector<CheaterCell> protocol1CheaterSweep(const sim::TrialConfig& engine) {
  std::vector<CheaterCell> cells;
  for (std::size_t n : {8u, 16u}) {
    util::Rng rng(7000 + n);
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    const double bound = protocol.family().collisionBound();

    struct Row {
      const char* name;
      core::CheatingRhoProver::Strategy strategy;
    };
    std::uint64_t cell = 7100 + n;
    for (const Row& row : {Row{"random permutation",
                               core::CheatingRhoProver::Strategy::kRandomPermutation},
                           Row{"same-degree transposition",
                               core::CheatingRhoProver::Strategy::kTransposition},
                           Row{"identity (trivial rho)",
                               core::CheatingRhoProver::Strategy::kIdentity}}) {
      sim::TrialStats stats = sim::estimateAcceptance(
          protocol, rigid,
          [&](std::size_t trial) {
            return std::make_unique<core::CheatingRhoProver>(protocol.family(),
                                                             row.strategy, trial);
          },
          500, cellConfig(engine, cell++));
      cells.push_back({"sym_dmam", n, row.name, stats, bound, false});
    }

    // Hash-chain liar on a SYMMETRIC graph: the graph is a YES instance,
    // but the corrupted chain must still be caught (deterministically).
    graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
    sim::TrialStats liar = sim::estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t trial) {
          return std::make_unique<core::HashChainLiarProver>(protocol.family(), trial);
        },
        200, cellConfig(engine, cell++));
    cells.push_back({"sym_dmam", n, "chain-value liar*", liar, 0.0, true});
  }
  return cells;
}

std::vector<CheaterCell> crossProtocolCheaterSweep(const sim::TrialConfig& engine) {
  std::vector<CheaterCell> cells;

  // Protocol 2 (dAM): the challenge-adaptive collision searcher on a rigid
  // graph — adaptivity is bounded by budget * collisions, far under 1/3.
  {
    const std::size_t n = 8;
    util::Rng rng(14000);
    core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    sim::TrialStats stats = sim::estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::AdaptiveCollisionProver>(protocol.family(), 25,
                                                                 trial);
        },
        300, cellConfig(engine, 14001));
    cells.push_back({"sym_dam", n, "adaptive collision (25)", stats, kSoundnessError,
                     false});
  }

  // DSym (dAM): honest play on a mismatched-sides NO instance is the
  // optimal cheating strategy (all messages forced up to collisions).
  {
    const std::size_t side = 6;
    util::Rng rng(14010);
    graph::DSymLayout layout = graph::dsymLayout(side, 1);
    util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
    core::DSymDamProtocol protocol(
        layout,
        hash::LinearHashFamily(
            util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
            static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
    graph::Graph f = graph::randomRigidConnected(side, rng);
    graph::Graph fOther = graph::randomRigidConnected(side, rng);
    while (fOther == f) fOther = graph::randomRigidConnected(side, rng);
    graph::Graph no = graph::dsymNoInstance(f, fOther, 1);
    sim::TrialStats stats = sim::estimateAcceptance(
        protocol, no,
        [&](std::size_t) {
          return std::make_unique<core::CheatingDSymProver>(layout, protocol.family());
        },
        300, cellConfig(engine, 14011));
    cells.push_back({"dsym_dam", layout.numVertices, "honest play on NO", stats,
                     kSoundnessError, false});
  }

  // Input symmetry (dMAM): fake rho on a rigid input, and the claim liar
  // whose fabricated neighbor images must break the consistency pair.
  {
    const std::size_t n = 8;
    util::Rng rng(14020);
    core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));
    core::SymInputInstance rigidInput{graph::randomConnected(n, n / 2, rng),
                                      graph::randomRigidConnected(n, rng)};
    sim::TrialStats fake = sim::estimateAcceptance(
        protocol, rigidInput,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingSymInputProver>(
              protocol.family(),
              core::CheatingSymInputProver::Strategy::kFakeRhoHonestClaims, trial);
        },
        300, cellConfig(engine, 14021));
    cells.push_back({"sym_input", n, "fake rho, honest claims", fake, kSoundnessError,
                     false});

    core::SymInputInstance symInput{graph::randomConnected(n, n / 2, rng),
                                    graph::randomSymmetricConnected(n, rng)};
    sim::TrialStats liar = sim::estimateAcceptance(
        protocol, symInput,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingSymInputProver>(
              protocol.family(), core::CheatingSymInputProver::Strategy::kClaimLiar,
              trial);
        },
        200, cellConfig(engine, 14022));
    cells.push_back({"sym_input", n, "claim liar", liar, kSoundnessError, false});
  }

  // GNI (dAMAM): honest play on an isomorphic instance IS the optimal
  // cheater; the non-permutation prober attacks the commitment checks.
  {
    const std::size_t n = 6;
    util::Rng rng(14030);
    core::GniAmamProtocol protocol(core::GniParams::choose(n, rng));
    core::GniInstance no = core::gniNoInstance(n, rng);
    sim::TrialStats honest = sim::estimateAcceptance(
        protocol, no,
        [&](std::size_t) { return std::make_unique<core::HonestGniProver>(protocol.params()); },
        60, cellConfig(engine, 14031));
    cells.push_back({"gni_amam", n, "honest play on NO", honest, kSoundnessError,
                     false});

    sim::TrialStats nonPerm = sim::estimateAcceptance(
        protocol, no,
        [&](std::size_t trial) {
          return std::make_unique<core::NonPermutationGniProver>(protocol.params(),
                                                                 trial);
        },
        40, cellConfig(engine, 14032));
    cells.push_back({"gni_amam", n, "non-permutation sigma", nonPerm, kSoundnessError,
                     false});
  }

  // General GNI (dAMAM, symmetric inputs): honest play on an isomorphic
  // symmetric instance.
  {
    const std::size_t n = 4;
    util::Rng rng(14040);
    core::GniGeneralProtocol protocol(core::GniGeneralParams::choose(n, rng));
    core::GniInstance no = core::gniGeneralNoInstance(n, rng);
    sim::TrialStats stats = sim::estimateAcceptance(
        protocol, no,
        [&](std::size_t) {
          return std::make_unique<core::HonestGniGeneralProver>(protocol.params());
        },
        60, cellConfig(engine, 14041));
    cells.push_back({"gni_general", n, "honest play on NO", stats, kSoundnessError,
                     false});
  }

  return cells;
}

}  // namespace dip::adv
