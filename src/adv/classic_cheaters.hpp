// The classic (hand-written) cheating-prover sweeps, folded out of
// bench_e7_cheating.cpp into library code so unit tests can pin each
// strategy's measured success under its paper bound. The benches are thin
// printers over these sweeps; the instance/seed scheme of the original E7
// table is preserved verbatim, so its stdout is unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/trial.hpp"
#include "sim/trial_runner.hpp"

namespace dip::adv {

struct CheaterCell {
  std::string protocol;
  std::size_t n = 0;          // Network size (layout vertices for DSym).
  std::string strategy;       // Row label, as the E7 table prints it.
  sim::TrialStats stats;
  double bound = 0.0;         // Paper's success bound for this row.
  bool exactCatch = false;    // Deterministic catch: accepts must be 0.
};

// The E7 Protocol 1 sweep: CheatingRhoProver's three strategies on rigid
// graphs (bounded by the collision bound n^2/p <= 1/(10 n)) plus the
// chain-value liar on a symmetric YES instance (caught exactly). Instance
// seeds 7000+n and cell seeds 7100+n match the historical bench so the
// regenerated table is byte-identical.
std::vector<CheaterCell> protocol1CheaterSweep(const sim::TrialConfig& engine);

// One representative classic cheater per remaining protocol, all bounded
// by the protocols' soundness error 1/3: the adaptive collision searcher
// (sym_dam), honest-play-on-NO (dsym_dam, gni_amam, gni_general — optimal
// there), the fake-rho and claim-liar strategies (sym_input), and the
// non-permutation commitment prober (gni_amam, caught exactly).
std::vector<CheaterCell> crossProtocolCheaterSweep(const sim::TrialConfig& engine);

}  // namespace dip::adv
