// The dipd wire protocol: length-prefixed frames over a local stream
// socket, one explicit request/response pair per verb.
//
//   frame := u32-LE payloadBytes | u8 verb | payload[payloadBytes]
//
// Payloads are encoded with the same util::BitWriter/BitReader codec the
// protocol wire formats use (net bitio conventions: varuints for counts and
// identifiers, fixed-width writeUInt for 64-bit values, MSB-first). The
// verb vocabulary, with direction and reply:
//
//   verb      direction            reply
//   HELLO     worker -> coord      HELLO (ack carries the worker id)
//   ASSIGN    coord  -> worker     PARTIAL* (beacons), then PARTIAL done=1
//   PARTIAL   worker -> coord      (none; done=1 completes the ASSIGN)
//   RETIRE    coord  -> worker     RETIRE (ack carries ranges completed)
//   SHUTDOWN  coord  -> worker     (none; worker exits)
//
// Every decoder validates before trusting: unknown verb tags, truncated
// payloads, oversized length prefixes and overlong varuints all raise
// CodecError — never UB, never a crash (the rpc fuzz suite drives this
// with the seeded-corpus pattern from tests/fuzz_seed.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/trial.hpp"

namespace dip::rpc {

// Malformed frame or payload. Carries a human-readable reason; callers
// treat the peer as faulty (coordinator: mark worker dead; worker: exit).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

enum class Verb : std::uint8_t {
  kHello = 1,
  kAssign = 2,
  kPartial = 3,
  kRetire = 4,
  kShutdown = 5,
};

// True for the five known verb tags (decode rejects everything else).
bool verbKnown(std::uint8_t raw);
std::string_view verbName(Verb verb);

// The protocol version both sides must agree on (HELLO handshake).
inline constexpr std::uint64_t kProtocolVersion = 1;

// Hard ceiling on a frame payload. A length prefix above this is rejected
// before any allocation happens — a corrupt or hostile 4 GiB prefix must
// not become a 4 GiB buffer.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

struct Frame {
  Verb verb = Verb::kHello;
  std::vector<std::uint8_t> payload;
};

// ---- Frame layer -----------------------------------------------------------

// Appends the encoded frame (header + payload) to `out`.
void encodeFrame(Verb verb, std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out);

// Extracts one frame from the front of `buffer`, erasing its bytes, or
// returns nullopt when the buffer does not yet hold a complete frame.
// Throws CodecError for oversized length prefixes and unknown verbs (the
// offending bytes are consumed so a poll loop can fail the peer cleanly).
std::optional<Frame> extractFrame(std::vector<std::uint8_t>& buffer);

// ---- Verb payloads ---------------------------------------------------------

// HELLO, worker -> coordinator: who is calling.
struct HelloMsg {
  std::uint64_t version = kProtocolVersion;
  std::uint64_t pid = 0;
  std::uint64_t threads = 1;  // Worker-side trial-engine pool size.
};

// HELLO ack, coordinator -> worker: the assigned worker id.
struct HelloAckMsg {
  std::uint64_t version = kProtocolVersion;
  std::uint64_t workerId = 0;
};

// ASSIGN, coordinator -> worker: run trials [lo, hi) of the named workload
// cell under the engine-level base seed. rangeIndex tags every PARTIAL the
// assignment produces; the coordinator's exactly-once fold dedups on it.
// epoch identifies the coordinator-side run the assignment belongs to (a
// daemon session serves many runs): a PARTIAL echoing a stale epoch can
// refresh liveness but must never fold.
struct AssignMsg {
  std::uint64_t epoch = 0;
  std::uint64_t rangeIndex = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t masterSeed = 0;
  std::string cell;
};

// PARTIAL, worker -> coordinator. done=false frames are heartbeat beacons
// (progress liveness, no outcomes); the done=true frame carries the full
// outcome vector for the range, outcome i being global trial lo + i.
struct PartialMsg {
  std::uint64_t workerId = 0;
  std::uint64_t epoch = 0;
  std::uint64_t rangeIndex = 0;
  bool done = false;
  std::vector<sim::TrialOutcome> outcomes;
};

// RETIRE ack, worker -> coordinator (the request payload is empty).
struct RetireMsg {
  std::uint64_t rangesCompleted = 0;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg& msg);
std::vector<std::uint8_t> encodeHelloAck(const HelloAckMsg& msg);
std::vector<std::uint8_t> encodeAssign(const AssignMsg& msg);
std::vector<std::uint8_t> encodePartial(const PartialMsg& msg);
std::vector<std::uint8_t> encodeRetire(const RetireMsg& msg);

// Decoders throw CodecError on any malformed payload (wrong verb, short or
// trailing-garbage payloads, overlong strings/counts).
HelloMsg decodeHello(const Frame& frame);
HelloAckMsg decodeHelloAck(const Frame& frame);
AssignMsg decodeAssign(const Frame& frame);
PartialMsg decodePartial(const Frame& frame);
RetireMsg decodeRetire(const Frame& frame);

}  // namespace dip::rpc
