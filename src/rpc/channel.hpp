// Framed message transport over a local stream-socket file descriptor.
//
// FrameChannel owns the byte-level mechanics both dipd endpoints share:
// partial writes, EINTR retries, read-buffer accumulation and frame
// extraction. It is deliberately thread-free (the coordinator multiplexes
// channels with poll(2) on one thread; a worker's reader thread lives in
// src/sim with the rest of the thread management) and never signals:
// writes use MSG_NOSIGNAL so a dead peer surfaces as a clean false return,
// not SIGPIPE.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rpc/frame.hpp"

namespace dip::rpc {

class FrameChannel {
 public:
  // Takes ownership of `fd` (closed on destruction or close()).
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel();
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&&) = delete;

  int fd() const { return fd_; }
  void close();

  // Writes one whole frame (blocking until sent). Returns false when the
  // peer is gone (EPIPE/ECONNRESET) or the channel is closed.
  bool send(Verb verb, std::span<const std::uint8_t> payload);
  bool send(Verb verb) { return send(verb, {}); }

  // Drains whatever the socket currently holds into the read buffer.
  // Returns false on EOF or a hard read error (the peer is gone); with a
  // non-blocking fd it returns true as soon as the socket would block, so
  // poll loops call it once per readiness event.
  bool readAvailable();

  // Extracts the next complete frame from the read buffer, or nullopt.
  // Throws CodecError on malformed bytes (see rpc::extractFrame).
  std::optional<Frame> next() { return extractFrame(buffer_); }

  // Blocking receive: reads until one full frame is available. nullopt on
  // EOF. Only for blocking fds (the worker-side handshake).
  std::optional<Frame> recv();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace dip::rpc
