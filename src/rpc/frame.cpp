#include "rpc/frame.hpp"

#include <algorithm>

#include "util/bitio.hpp"

namespace dip::rpc {

namespace {

// Ceilings on embedded counts, enforced before any allocation sized by
// attacker-controlled bytes. A 16-trial seed-range PARTIAL holds 16
// outcomes; 1<<16 leaves three orders of magnitude of headroom while
// keeping a corrupt count harmless.
constexpr std::uint64_t kMaxOutcomes = 1u << 16;
constexpr std::uint64_t kMaxCellName = 256;

void writeString(util::BitWriter& writer, const std::string& text) {
  writer.writeVarUInt(text.size());
  for (char c : text) {
    writer.writeUInt(static_cast<std::uint8_t>(c), 8);
  }
}

std::string readString(util::BitReader& reader) {
  const std::uint64_t length = reader.readVarUInt();
  if (length > kMaxCellName) throw CodecError("string length exceeds ceiling");
  std::string text;
  text.reserve(static_cast<std::size_t>(length));
  for (std::uint64_t i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(reader.readUInt(8)));
  }
  return text;
}

std::vector<std::uint8_t> finish(const util::BitWriter& writer) {
  auto bytes = writer.bytes();
  return {bytes.begin(), bytes.end()};
}

// Runs a payload decoder with the bitio exceptions translated to
// CodecError, and enforces that the decoder consumed the whole payload
// (only zero padding bits in the final byte may remain).
template <typename Fn>
auto decodePayload(const Frame& frame, Verb expect, Fn&& fn) {
  if (frame.verb != expect) {
    throw CodecError(std::string("unexpected verb: got ") +
                     std::string(verbName(frame.verb)) + ", want " +
                     std::string(verbName(expect)));
  }
  try {
    util::BitReader reader(frame.payload, frame.payload.size() * 8);
    auto msg = fn(reader);
    if (reader.bitsRemaining() >= 8) {
      throw CodecError("trailing bytes after payload");
    }
    while (reader.bitsRemaining() > 0) {
      if (reader.readBit()) throw CodecError("nonzero padding bits");
    }
    return msg;
  } catch (const CodecError&) {
    throw;
  } catch (const std::exception& e) {
    throw CodecError(std::string("malformed ") + std::string(verbName(expect)) +
                     " payload: " + e.what());
  }
}

}  // namespace

bool verbKnown(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Verb::kHello) &&
         raw <= static_cast<std::uint8_t>(Verb::kShutdown);
}

std::string_view verbName(Verb verb) {
  switch (verb) {
    case Verb::kHello: return "HELLO";
    case Verb::kAssign: return "ASSIGN";
    case Verb::kPartial: return "PARTIAL";
    case Verb::kRetire: return "RETIRE";
    case Verb::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

void encodeFrame(Verb verb, std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out) {
  if (payload.size() > kMaxFramePayload) {
    throw CodecError("frame payload exceeds ceiling");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + 5 + payload.size());
  out.push_back(static_cast<std::uint8_t>(length & 0xFF));
  out.push_back(static_cast<std::uint8_t>((length >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((length >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((length >> 24) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(verb));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::optional<Frame> extractFrame(std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 5) return std::nullopt;
  const std::uint32_t length = static_cast<std::uint32_t>(buffer[0]) |
                               (static_cast<std::uint32_t>(buffer[1]) << 8) |
                               (static_cast<std::uint32_t>(buffer[2]) << 16) |
                               (static_cast<std::uint32_t>(buffer[3]) << 24);
  if (length > kMaxFramePayload) {
    // Consume the poisoned header so the caller can fail the peer without
    // re-throwing forever on the same bytes.
    buffer.clear();
    throw CodecError("frame length prefix exceeds ceiling");
  }
  if (!verbKnown(buffer[4])) {
    buffer.clear();
    throw CodecError("unknown verb tag");
  }
  if (buffer.size() < 5u + length) return std::nullopt;
  Frame frame;
  frame.verb = static_cast<Verb>(buffer[4]);
  frame.payload.assign(buffer.begin() + 5, buffer.begin() + 5 + length);
  buffer.erase(buffer.begin(), buffer.begin() + 5 + length);
  return frame;
}

std::vector<std::uint8_t> encodeHello(const HelloMsg& msg) {
  util::BitWriter writer;
  writer.writeVarUInt(msg.version);
  writer.writeVarUInt(msg.pid);
  writer.writeVarUInt(msg.threads);
  return finish(writer);
}

HelloMsg decodeHello(const Frame& frame) {
  return decodePayload(frame, Verb::kHello, [](util::BitReader& reader) {
    HelloMsg msg;
    msg.version = reader.readVarUInt();
    msg.pid = reader.readVarUInt();
    msg.threads = reader.readVarUInt();
    if (msg.version != kProtocolVersion) throw CodecError("version mismatch");
    if (msg.threads == 0 || msg.threads > 1024) {
      throw CodecError("implausible worker thread count");
    }
    return msg;
  });
}

std::vector<std::uint8_t> encodeHelloAck(const HelloAckMsg& msg) {
  util::BitWriter writer;
  writer.writeVarUInt(msg.version);
  writer.writeVarUInt(msg.workerId);
  return finish(writer);
}

HelloAckMsg decodeHelloAck(const Frame& frame) {
  return decodePayload(frame, Verb::kHello, [](util::BitReader& reader) {
    HelloAckMsg msg;
    msg.version = reader.readVarUInt();
    msg.workerId = reader.readVarUInt();
    if (msg.version != kProtocolVersion) throw CodecError("version mismatch");
    return msg;
  });
}

std::vector<std::uint8_t> encodeAssign(const AssignMsg& msg) {
  util::BitWriter writer;
  writer.writeVarUInt(msg.epoch);
  writer.writeVarUInt(msg.rangeIndex);
  writer.writeVarUInt(msg.lo);
  writer.writeVarUInt(msg.hi);
  writer.writeUInt(msg.masterSeed, 64);
  writeString(writer, msg.cell);
  return finish(writer);
}

AssignMsg decodeAssign(const Frame& frame) {
  return decodePayload(frame, Verb::kAssign, [](util::BitReader& reader) {
    AssignMsg msg;
    msg.epoch = reader.readVarUInt();
    msg.rangeIndex = reader.readVarUInt();
    msg.lo = reader.readVarUInt();
    msg.hi = reader.readVarUInt();
    msg.masterSeed = reader.readUInt(64);
    msg.cell = readString(reader);
    if (msg.hi <= msg.lo) throw CodecError("empty or inverted seed-range");
    if (msg.hi - msg.lo > kMaxOutcomes) throw CodecError("seed-range too wide");
    if (msg.cell.empty()) throw CodecError("empty cell name");
    return msg;
  });
}

std::vector<std::uint8_t> encodePartial(const PartialMsg& msg) {
  util::BitWriter writer;
  writer.writeVarUInt(msg.workerId);
  writer.writeVarUInt(msg.epoch);
  writer.writeVarUInt(msg.rangeIndex);
  writer.writeBit(msg.done);
  writer.writeVarUInt(msg.outcomes.size());
  for (const sim::TrialOutcome& outcome : msg.outcomes) {
    writer.writeBit(outcome.accepted);
    writer.writeVarUInt(outcome.maxPerNodeBits);
    writer.writeUInt(outcome.digest, 64);
  }
  return finish(writer);
}

PartialMsg decodePartial(const Frame& frame) {
  return decodePayload(frame, Verb::kPartial, [](util::BitReader& reader) {
    PartialMsg msg;
    msg.workerId = reader.readVarUInt();
    msg.epoch = reader.readVarUInt();
    msg.rangeIndex = reader.readVarUInt();
    msg.done = reader.readBit();
    const std::uint64_t count = reader.readVarUInt();
    if (count > kMaxOutcomes) throw CodecError("outcome count exceeds ceiling");
    if (!msg.done && count != 0) {
      throw CodecError("heartbeat beacon must carry no outcomes");
    }
    msg.outcomes.resize(static_cast<std::size_t>(count));
    for (sim::TrialOutcome& outcome : msg.outcomes) {
      outcome.accepted = reader.readBit();
      outcome.maxPerNodeBits = static_cast<std::size_t>(reader.readVarUInt());
      outcome.digest = reader.readUInt(64);
    }
    return msg;
  });
}

std::vector<std::uint8_t> encodeRetire(const RetireMsg& msg) {
  util::BitWriter writer;
  writer.writeVarUInt(msg.rangesCompleted);
  return finish(writer);
}

RetireMsg decodeRetire(const Frame& frame) {
  return decodePayload(frame, Verb::kRetire, [](util::BitReader& reader) {
    RetireMsg msg;
    msg.rangesCompleted = reader.readVarUInt();
    return msg;
  });
}

}  // namespace dip::rpc
