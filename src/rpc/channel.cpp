#include "rpc/channel.hpp"

#include <cerrno>
#include <cstddef>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dip::rpc {

FrameChannel::~FrameChannel() { close(); }

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FrameChannel::send(Verb verb, std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> bytes;
  encodeFrame(verb, payload, bytes);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full socket buffer: wait for writability
        // so a frame is always sent whole (frames interleave, not bytes).
        struct pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, -1);
        continue;
      }
      return false;  // EPIPE/ECONNRESET: peer is gone.
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool FrameChannel::readAvailable() {
  if (fd_ < 0) return false;
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + got);
      if (static_cast<std::size_t>(got) < sizeof(chunk)) return true;
      continue;  // A full chunk: there may be more queued.
    }
    if (got == 0) return false;  // EOF.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

std::optional<Frame> FrameChannel::recv() {
  for (;;) {
    if (std::optional<Frame> frame = next()) return frame;
    if (fd_ < 0) return std::nullopt;
    std::uint8_t chunk[65536];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + got);
      continue;
    }
    if (got == 0) return std::nullopt;  // EOF.
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

}  // namespace dip::rpc
