// Compressed sparse-row adjacency for large-n structural workloads.
//
// The dense `Graph` stores n rows of n bits — O(n^2) memory, which caps the
// cost tables near n = 10^3 (~125 GB at n = 10^6). Structural dry-runs only
// ever ITERATE neighborhoods (spanning trees, degree sweeps, charge
// schedules), so `CsrGraph` stores each vertex's sorted neighbor list as
// delta-compressed blocks and exposes streaming visitors instead of
// materialized rows.
//
// Layout (all fields little-endian bit order inside one packed word blob):
//
//   vertex v stream  :=  block*                 (degree(v) entries total)
//   block            :=  header  first  gap*
//   header           :=  5 bits: gap width w - 1          (w in 1..32)
//   first            :=  idBits-bit absolute id of the block's first neighbor
//   gap              :=  w-bit (u_i - u_{i-1} - 1), strictly ascending ids
//
// Blocks hold up to kBlockCap = 32 neighbors; block lengths are derived
// from degree(v), so no per-block count is stored. The per-block width lets
// a vertex mix dense runs (grid/path gaps of 1 encode in 1-bit gaps) with a
// few far edges without paying the worst-case width everywhere — the same
// packed-header + per-block-delta-width scheme as the FAM codec family
// (see docs/PERFORMANCE.md "Large-n CSR graph engine" for the layout facts
// this design relies on).
//
// Traversal never allocates: `forEachNeighbor(v, fn)` decodes the stream
// in place. Conversion to/from the dense `Graph` is an exact round trip.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dip::graph {

class CsrGraph {
 public:
  // Neighbors per compressed block. 32 amortizes the (5 + idBits)-bit block
  // overhead to under 1 bit/edge at full blocks while keeping the tail cost
  // of low-degree vertices (trees: degree 1-3) one short block.
  static constexpr std::size_t kBlockCap = 32;

  CsrGraph() = default;

  // Exact conversions: fromGraph(g).toGraph() == g for every dense graph.
  static CsrGraph fromGraph(const Graph& g);
  Graph toGraph() const;

  // Builds from an undirected edge list (each edge listed once, loops
  // rejected, duplicates collapsed) without any dense intermediate: peak
  // memory is the 2m-entry scatter array plus the compressed result.
  static CsrGraph fromEdges(std::size_t numVertices,
                            const std::vector<std::pair<Vertex, Vertex>>& edges);

  std::size_t numVertices() const { return n_; }
  std::size_t numEdges() const { return numEdges_; }
  std::size_t degree(Vertex v) const { return degrees_[v]; }
  std::size_t maxDegree() const;

  // Scans v's stream; O(degree(v)) like one visitor pass.
  bool hasEdge(Vertex u, Vertex v) const;

  bool isConnected() const;

  // Visits v's open neighborhood in ascending order, decoding blocks in
  // place — no neighbor vector is ever materialized.
  template <typename Fn>
  void forEachNeighbor(Vertex v, Fn&& fn) const {
    std::uint64_t pos = offsets_[v];
    std::size_t remaining = degrees_[v];
    while (remaining > 0) {
      const unsigned width = static_cast<unsigned>(readBits(pos, 5)) + 1;
      const std::size_t len = remaining < kBlockCap ? remaining : kBlockCap;
      Vertex value = static_cast<Vertex>(readBits(pos, idBits_));
      fn(value);
      for (std::size_t i = 1; i < len; ++i) {
        value += static_cast<Vertex>(readBits(pos, width)) + 1;
        fn(value);
      }
      remaining -= len;
    }
  }

  // Closed neighborhood N_G(v) (v included), ascending — the paper's N(v).
  template <typename Fn>
  void forEachClosedNeighbor(Vertex v, Fn&& fn) const {
    bool emitted = false;
    forEachNeighbor(v, [&](Vertex u) {
      if (!emitted && u > v) {
        emitted = true;
        fn(v);
      }
      fn(u);
    });
    if (!emitted) fn(v);
  }

  // Visits every edge once as (u, v) with u < v, ascending by (u, v).
  template <typename Fn>
  void forEachEdge(Fn&& fn) const {
    for (Vertex u = 0; u < n_; ++u) {
      forEachNeighbor(u, [&](Vertex v) {
        if (v > u) fn(u, v);
      });
    }
  }

  bool operator==(const CsrGraph& other) const = default;

  // ---- Memory accounting (the bytes-per-node budget gate reads these) ----

  // Bits of compressed adjacency payload (headers + firsts + gaps).
  std::size_t adjacencyBits() const { return blobBits_; }
  // Total resident bytes: payload words + offset/degree arrays + header.
  std::size_t memoryBytes() const;
  // Payload bits per edge endpoint pair (0 for edgeless graphs).
  double bitsPerEdge() const;

 private:
  std::uint64_t readBits(std::uint64_t& pos, unsigned width) const {
    const std::uint64_t word = pos >> 6;
    const unsigned shift = static_cast<unsigned>(pos & 63);
    std::uint64_t value = blob_[word] >> shift;
    if (shift + width > 64 && word + 1 < blob_.size()) {
      value |= blob_[word + 1] << (64 - shift);
    }
    pos += width;
    return value & (width == 64 ? ~0ull : ((1ull << width) - 1));
  }

  void appendBits(std::uint64_t value, unsigned width);
  // Appends one vertex's sorted neighbor segment and records its offset.
  void encodeVertex(Vertex v, const Vertex* neighbors, std::size_t count);
  void beginEncoding(std::size_t numVertices);
  void finishEncoding();

  std::size_t n_ = 0;
  std::size_t numEdges_ = 0;
  unsigned idBits_ = 1;
  std::uint64_t blobBits_ = 0;
  std::vector<std::uint32_t> degrees_;
  std::vector<std::uint64_t> offsets_;  // n entries: bit offset of v's stream.
  std::vector<std::uint64_t> blob_;
};

}  // namespace dip::graph
