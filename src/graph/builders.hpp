// Structured instance builders taken directly from the paper:
//
//  * The dumbbell family G(F_A, F_B) of Section 3.4 — two copies of rigid
//    graphs joined by a two-node bridge; G(F_A, F_B) is symmetric iff
//    F_A = F_B. This family drives the Omega(log log n) lower bound.
//  * Dumbbell-Symmetry (DSym) instances of Definition 5 — two copies of a
//    graph F related by the FIXED isomorphism sigma'(x) = x + n, joined by a
//    path of 2r + 1 extra vertices. DSym gives the exponential separation
//    between distributed NP and distributed AM (Theorem 1.2 / 3.6).
#pragma once

#include "graph/graph.hpp"

namespace dip::graph {

// ---- Lower-bound dumbbell (Section 3.4) ----
//
// Vertex layout for G(F_A, F_B) with |F_A| = |F_B| = k:
//   0 .. k-1      copy of F_A   (v_A = 0)
//   k .. 2k-1     copy of F_B   (v_B = k)
//   2k            bridge node x_A
//   2k+1          bridge node x_B
// Edges: F_A internal, F_B internal, {v_A, x_A}, {x_A, x_B}, {x_B, v_B}.
struct DumbbellLayout {
  std::size_t sideSize = 0;  // k
  Vertex vA = 0;
  Vertex vB = 0;
  Vertex xA = 0;
  Vertex xB = 0;
};

Graph dumbbell(const Graph& fA, const Graph& fB);
DumbbellLayout dumbbellLayout(std::size_t sideSize);

// ---- DSym (Definition 5) ----
//
// Vertex layout for a (2n + 2r + 1)-vertex DSym graph:
//   0 .. n-1        F_0
//   n .. 2n-1       F_1 = sigma'(F_0) with sigma'(x) = x + n
//   2n .. 2n+2r     the connecting path 0 - 2n - 2n+1 - ... - 2n+2r - n
struct DSymLayout {
  std::size_t sideSize = 0;    // n
  std::size_t pathRadius = 0;  // r
  std::size_t numVertices = 0;
};

// A YES-instance built from F (any graph on sideSize vertices).
Graph dsymInstance(const Graph& f, std::size_t pathRadius);
DSymLayout dsymLayout(std::size_t sideSize, std::size_t pathRadius);

// The fixed automorphism sigma of Definition 5 for the given layout: swaps
// the two sides via x <-> x + n and reverses the path.
Permutation dsymSigma(const DSymLayout& layout);

// Checks the purely-local structural conditions (2) and (3) of Section 3.3
// restricted to vertex v: path edges present, no stray cross edges. Used by
// the DSym verifier nodes.
bool dsymLocalStructureOk(const Graph& g, const DSymLayout& layout, Vertex v);

// Membership test for the DSym language (ground truth for experiments).
bool isDSymInstance(const Graph& g, const DSymLayout& layout);

// A NO-instance: like dsymInstance but the second side is built from
// fOther (which should not equal f under sigma'), keeping the path intact.
Graph dsymNoInstance(const Graph& f, const Graph& fOther, std::size_t pathRadius);

}  // namespace dip::graph
