// graph6 format support (McKay's nauty interchange format).
//
// Downstream users bring graphs from nauty / networkx / House of Graphs as
// graph6 strings; this module parses and emits the format for graphs on up
// to 62 vertices (the single-byte-size regime), enough for every
// executable experiment in this repository.
//
// Format: byte (n + 63), then the upper-triangle adjacency bits in column
// order — (0,1), (0,2), (1,2), (0,3), ... — packed big-endian into 6-bit
// groups, each emitted as (value + 63).
#pragma once

#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace dip::graph {

// Encodes g (numVertices() <= 62) as a graph6 string.
std::string toGraph6(const Graph& g);

// Parses a graph6 string; throws std::invalid_argument on malformed input.
Graph fromGraph6(std::string_view text);

}  // namespace dip::graph
