#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>

namespace dip::graph {

namespace {

// One refinement round: new color = rank of (old color, sorted neighbor
// colors). Ranks are assigned by sorting signatures, so they are canonical
// (two graphs assign the same color to vertices with identical signatures).
std::vector<std::uint32_t> refineOnce(const Graph& g,
                                      const std::vector<std::uint32_t>& colors,
                                      std::size_t& numClasses) {
  using Signature = std::pair<std::uint32_t, std::vector<std::uint32_t>>;
  const std::size_t n = g.numVertices();
  std::vector<Signature> signatures(n);
  for (Vertex v = 0; v < n; ++v) {
    std::vector<std::uint32_t> around;
    around.reserve(g.degree(v));
    g.row(v).forEachSet([&](std::size_t u) { around.push_back(colors[u]); });
    std::sort(around.begin(), around.end());
    signatures[v] = {colors[v], std::move(around)};
  }
  std::map<Signature, std::uint32_t> ranks;
  for (const auto& sig : signatures) ranks.emplace(sig, 0);
  std::uint32_t next = 0;
  for (auto& [sig, rank] : ranks) rank = next++;
  numClasses = ranks.size();
  std::vector<std::uint32_t> out(n);
  for (Vertex v = 0; v < n; ++v) out[v] = ranks.at(signatures[v]);
  return out;
}

}  // namespace

std::vector<std::uint32_t> refinementColors(const Graph& g) {
  const std::size_t n = g.numVertices();
  std::vector<std::uint32_t> colors(n);
  for (Vertex v = 0; v < n; ++v) colors[v] = static_cast<std::uint32_t>(g.degree(v));
  std::size_t classes = 0;
  for (std::size_t round = 0; round < n + 1; ++round) {
    std::size_t newClasses = 0;
    auto next = refineOnce(g, colors, newClasses);
    bool stable = (round > 0 && newClasses == classes);
    colors = std::move(next);
    classes = newClasses;
    if (stable || classes == n) break;
  }
  return colors;
}

namespace {

// Backtracking mapper shared by isomorphism search, non-trivial-automorphism
// search, and automorphism counting.
class IsoSearcher {
 public:
  IsoSearcher(const Graph& g0, const Graph& g1, bool forbidIdentity)
      : g0_(g0), g1_(g1), forbidIdentity_(forbidIdentity) {
    n_ = g0.numVertices();
    colors0_ = refinementColors(g0);
    colors1_ = (&g0 == &g1) ? colors0_ : refinementColors(g1);
    mapping_.assign(n_, kUnmapped);
    used_.assign(n_, false);
  }

  // Color class histograms must agree for an isomorphism to exist.
  bool colorHistogramsMatch() const {
    std::vector<std::uint32_t> h0 = colors0_;
    std::vector<std::uint32_t> h1 = colors1_;
    std::sort(h0.begin(), h0.end());
    std::sort(h1.begin(), h1.end());
    return h0 == h1;
  }

  // Runs the search; visit(mapping) is called on every complete isomorphism
  // found and returns true to stop the search.
  template <typename Visit>
  bool search(Visit&& visit) {
    return recurse(0, visit);
  }

 private:
  static constexpr Vertex kUnmapped = static_cast<Vertex>(-1);

  // Picks the unmapped vertex with the fewest viable targets
  // (most-constrained-variable heuristic); fills `targets` for it.
  Vertex selectNext(std::vector<Vertex>& targets) const {
    Vertex best = kUnmapped;
    std::size_t bestCount = static_cast<std::size_t>(-1);
    std::vector<Vertex> bestTargets;
    std::vector<Vertex> scratch;
    for (Vertex v = 0; v < n_; ++v) {
      if (mapping_[v] != kUnmapped) continue;
      scratch.clear();
      for (Vertex u = 0; u < n_; ++u) {
        if (!used_[u] && viable(v, u)) scratch.push_back(u);
      }
      if (scratch.size() < bestCount) {
        bestCount = scratch.size();
        best = v;
        bestTargets = scratch;
        if (bestCount <= 1) break;
      }
    }
    targets = std::move(bestTargets);
    return best;
  }

  bool viable(Vertex v, Vertex u) const {
    if (colors0_[v] != colors1_[u]) return false;
    if (g0_.degree(v) != g1_.degree(u)) return false;
    // Adjacency with every already-mapped vertex must be preserved both ways.
    for (Vertex w = 0; w < n_; ++w) {
      Vertex x = mapping_[w];
      if (x == kUnmapped) continue;
      if (g0_.hasEdge(v, w) != g1_.hasEdge(u, x)) return false;
    }
    return true;
  }

  template <typename Visit>
  bool recurse(std::size_t depth, Visit& visit) {
    if (depth == n_) {
      Permutation result(mapping_.begin(), mapping_.end());
      if (forbidIdentity_ && isIdentity(result)) return false;
      return visit(result);
    }
    std::vector<Vertex> targets;
    Vertex v = selectNext(targets);
    if (targets.empty()) return false;
    // Identity-forbidding prune: if the only remaining extension maps every
    // vertex to itself and the partial map is the identity so far, the
    // branch can still complete (handled at the leaf); no extra pruning
    // needed for correctness.
    for (Vertex u : targets) {
      mapping_[v] = u;
      used_[u] = true;
      if (recurse(depth + 1, visit)) return true;
      mapping_[v] = kUnmapped;
      used_[u] = false;
    }
    return false;
  }

  const Graph& g0_;
  const Graph& g1_;
  bool forbidIdentity_;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> colors0_;
  std::vector<std::uint32_t> colors1_;
  std::vector<Vertex> mapping_;
  std::vector<bool> used_;
};

}  // namespace

std::optional<Permutation> findIsomorphism(const Graph& g0, const Graph& g1) {
  if (g0.numVertices() != g1.numVertices()) return std::nullopt;
  if (g0.numEdges() != g1.numEdges()) return std::nullopt;
  IsoSearcher searcher(g0, g1, /*forbidIdentity=*/false);
  if (!searcher.colorHistogramsMatch()) return std::nullopt;
  std::optional<Permutation> found;
  searcher.search([&](const Permutation& perm) {
    found = perm;
    return true;
  });
  return found;
}

std::optional<Permutation> findNontrivialAutomorphism(const Graph& g) {
  if (g.numVertices() < 2) return std::nullopt;
  IsoSearcher searcher(g, g, /*forbidIdentity=*/true);
  std::optional<Permutation> found;
  searcher.search([&](const Permutation& perm) {
    found = perm;
    return true;
  });
  return found;
}

bool isRigid(const Graph& g) { return !findNontrivialAutomorphism(g).has_value(); }

bool areIsomorphic(const Graph& g0, const Graph& g1) {
  return findIsomorphism(g0, g1).has_value();
}

std::uint64_t countAutomorphisms(const Graph& g, std::uint64_t cap) {
  if (g.numVertices() == 0) return 1;
  IsoSearcher searcher(g, g, /*forbidIdentity=*/false);
  std::uint64_t count = 0;
  searcher.search([&](const Permutation&) {
    ++count;
    return count >= cap;
  });
  return count;
}

std::vector<Permutation> allAutomorphisms(const Graph& g, std::size_t cap) {
  if (g.numVertices() == 0) return {Permutation{}};
  IsoSearcher searcher(g, g, /*forbidIdentity=*/false);
  std::vector<Permutation> group;
  searcher.search([&](const Permutation& perm) {
    group.push_back(perm);
    return group.size() >= cap;
  });
  return group;
}

}  // namespace dip::graph
