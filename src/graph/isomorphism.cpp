#include "graph/isomorphism.hpp"

#include <algorithm>

#include "graph/ir.hpp"

namespace dip::graph {

namespace {

// One refinement round: new color = rank of (old color, sorted neighbor
// colors). Ranks are assigned by sorting index/signature pairs and walking
// adjacent-unique runs, so they are canonical (two graphs assign the same
// color to vertices with identical signatures) without the node-per-key
// overhead of an ordered map.
std::vector<std::uint32_t> refineOnce(const Graph& g,
                                      const std::vector<std::uint32_t>& colors,
                                      std::size_t& numClasses) {
  using Signature = std::pair<std::uint32_t, std::vector<std::uint32_t>>;
  const std::size_t n = g.numVertices();
  std::vector<Signature> signatures(n);
  for (Vertex v = 0; v < n; ++v) {
    std::vector<std::uint32_t> around;
    around.reserve(g.degree(v));
    g.row(v).forEachSet([&](std::size_t u) { around.push_back(colors[u]); });
    std::sort(around.begin(), around.end());
    signatures[v] = {colors[v], std::move(around)};
  }
  std::vector<Vertex> bySignature(n);
  for (Vertex v = 0; v < n; ++v) bySignature[v] = v;
  std::sort(bySignature.begin(), bySignature.end(), [&](Vertex a, Vertex b) {
    return signatures[a] < signatures[b];
  });
  std::vector<std::uint32_t> out(n);
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && signatures[bySignature[i]] != signatures[bySignature[i - 1]]) ++rank;
    out[bySignature[i]] = rank;
  }
  numClasses = (n == 0) ? 0 : rank + 1;
  return out;
}

}  // namespace

std::vector<std::uint32_t> refinementColors(const Graph& g) {
  const std::size_t n = g.numVertices();
  std::vector<std::uint32_t> colors(n);
  for (Vertex v = 0; v < n; ++v) colors[v] = static_cast<std::uint32_t>(g.degree(v));
  std::size_t classes = 0;
  for (std::size_t round = 0; round < n + 1; ++round) {
    std::size_t newClasses = 0;
    auto next = refineOnce(g, colors, newClasses);
    bool stable = (round > 0 && newClasses == classes);
    colors = std::move(next);
    classes = newClasses;
    if (stable || classes == n) break;
  }
  return colors;
}

namespace {

// Backtracking mapper: the reference searcher behind the *Backtracking
// oracles. The IR engine in graph/ir.hpp replaces it on the hot paths.
class IsoSearcher {
 public:
  IsoSearcher(const Graph& g0, const Graph& g1, bool forbidIdentity)
      : g0_(g0), g1_(g1), forbidIdentity_(forbidIdentity) {
    n_ = g0.numVertices();
    colors0_ = refinementColors(g0);
    colors1_ = (&g0 == &g1) ? colors0_ : refinementColors(g1);
    mapping_.assign(n_, kUnmapped);
    used_.assign(n_, false);
    mappedMask0_ = util::DynBitset(n_);
    usedMask1_ = util::DynBitset(n_);
  }

  // Color class histograms must agree for an isomorphism to exist.
  bool colorHistogramsMatch() const {
    std::vector<std::uint32_t> h0 = colors0_;
    std::vector<std::uint32_t> h1 = colors1_;
    std::sort(h0.begin(), h0.end());
    std::sort(h1.begin(), h1.end());
    return h0 == h1;
  }

  // Runs the search; visit(mapping) is called on every complete isomorphism
  // found and returns true to stop the search.
  template <typename Visit>
  bool search(Visit&& visit) {
    return recurse(0, visit);
  }

 private:
  static constexpr Vertex kUnmapped = static_cast<Vertex>(-1);

  // Picks the unmapped vertex with the fewest viable targets
  // (most-constrained-variable heuristic); fills `targets` for it. Scratch
  // lives on the searcher so the recursion does not reallocate per call.
  Vertex selectNext(std::vector<Vertex>& targets) {
    Vertex best = kUnmapped;
    std::size_t bestCount = static_cast<std::size_t>(-1);
    bestTargets_.clear();
    for (Vertex v = 0; v < n_; ++v) {
      if (mapping_[v] != kUnmapped) continue;
      scratchTargets_.clear();
      for (Vertex u = 0; u < n_; ++u) {
        if (!used_[u] && viable(v, u)) scratchTargets_.push_back(u);
      }
      if (scratchTargets_.size() < bestCount) {
        bestCount = scratchTargets_.size();
        best = v;
        std::swap(bestTargets_, scratchTargets_);
        if (bestCount <= 1) break;
      }
    }
    targets = bestTargets_;
    return best;
  }

  bool viable(Vertex v, Vertex u) const {
    if (colors0_[v] != colors1_[u]) return false;
    if (g0_.degree(v) != g1_.degree(u)) return false;
    // Adjacency with every already-mapped vertex must be preserved both
    // ways: the image of N(v) ∩ mapped must equal N(u) ∩ used. A word-wise
    // intersection walk replaces the old all-vertices scalar scan.
    const std::uint64_t* rowV = g0_.row(v).words();
    const std::uint64_t* mapped = mappedMask0_.words();
    const util::DynBitset& rowU = g1_.row(u);
    std::size_t forwardHits = 0;
    const std::size_t wordCount = g0_.row(v).wordCount();
    for (std::size_t i = 0; i < wordCount; ++i) {
      std::uint64_t word = rowV[i] & mapped[i];
      while (word) {
        const auto w = static_cast<Vertex>(
            i * 64 + static_cast<unsigned>(__builtin_ctzll(word)));
        word &= word - 1;
        if (!rowU.test(mapping_[w])) return false;
        ++forwardHits;
      }
    }
    const std::uint64_t* rowUWords = rowU.words();
    const std::uint64_t* usedWords = usedMask1_.words();
    std::size_t backHits = 0;
    for (std::size_t i = 0; i < wordCount; ++i) {
      backHits += static_cast<std::size_t>(__builtin_popcountll(rowUWords[i] & usedWords[i]));
    }
    return forwardHits == backHits;
  }

  template <typename Visit>
  bool recurse(std::size_t depth, Visit& visit) {
    if (depth == n_) {
      Permutation result(mapping_.begin(), mapping_.end());
      if (forbidIdentity_ && isIdentity(result)) return false;
      return visit(result);
    }
    std::vector<Vertex> targets;
    Vertex v = selectNext(targets);
    if (targets.empty()) return false;
    for (Vertex u : targets) {
      mapping_[v] = u;
      used_[u] = true;
      mappedMask0_.set(v);
      usedMask1_.set(u);
      if (recurse(depth + 1, visit)) return true;
      mapping_[v] = kUnmapped;
      used_[u] = false;
      mappedMask0_.reset(v);
      usedMask1_.reset(u);
    }
    return false;
  }

  const Graph& g0_;
  const Graph& g1_;
  bool forbidIdentity_;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> colors0_;
  std::vector<std::uint32_t> colors1_;
  std::vector<Vertex> mapping_;
  std::vector<bool> used_;
  util::DynBitset mappedMask0_;
  util::DynBitset usedMask1_;
  std::vector<Vertex> scratchTargets_;
  std::vector<Vertex> bestTargets_;
};

// One engine per thread: the workspace (partitions, traces, orbit state) is
// recycled across calls, so tight rejection-sampling loops do not churn the
// allocator.
IrSolver& engine() {
  thread_local IrSolver solver;
  return solver;
}

}  // namespace

std::optional<Permutation> findIsomorphism(const Graph& g0, const Graph& g1) {
  return engine().findIsomorphism(g0, g1);
}

std::optional<Permutation> findNontrivialAutomorphism(const Graph& g) {
  // Repeated-trial workloads (estimateAcceptance, throughput cells) call this
  // with the same graph thousands of times; the search is deterministic, so a
  // one-entry memo keyed on the full adjacency answers every repeat with a
  // word compare instead of a partition-refinement search.
  thread_local struct {
    std::size_t n = static_cast<std::size_t>(-1);
    std::vector<std::uint64_t> adjacency;
    std::optional<Permutation> result;
  } memo;
  const std::size_t n = g.numVertices();
  thread_local std::vector<std::uint64_t> key;
  key.clear();
  for (Vertex v = 0; v < n; ++v) {
    const util::DynBitset& row = g.row(v);
    key.insert(key.end(), row.words(), row.words() + row.wordCount());
  }
  if (memo.n == n && memo.adjacency == key) return memo.result;
  memo.result = engine().findNontrivialAutomorphism(g);
  memo.n = n;
  memo.adjacency = key;
  return memo.result;
}

bool isRigid(const Graph& g) { return engine().isRigid(g); }

bool areIsomorphic(const Graph& g0, const Graph& g1) {
  return findIsomorphism(g0, g1).has_value();
}

std::uint64_t countAutomorphisms(const Graph& g, std::uint64_t cap) {
  return engine().countAutomorphisms(g, cap);
}

std::vector<Permutation> allAutomorphisms(const Graph& g, std::size_t cap) {
  return engine().allAutomorphisms(g, cap);
}

std::optional<Permutation> findIsomorphismBacktracking(const Graph& g0, const Graph& g1) {
  if (g0.numVertices() != g1.numVertices()) return std::nullopt;
  if (g0.numEdges() != g1.numEdges()) return std::nullopt;
  IsoSearcher searcher(g0, g1, /*forbidIdentity=*/false);
  if (!searcher.colorHistogramsMatch()) return std::nullopt;
  std::optional<Permutation> found;
  searcher.search([&](const Permutation& perm) {
    found = perm;
    return true;
  });
  return found;
}

std::uint64_t countAutomorphismsBacktracking(const Graph& g, std::uint64_t cap) {
  if (g.numVertices() == 0) return 1;
  IsoSearcher searcher(g, g, /*forbidIdentity=*/false);
  std::uint64_t count = 0;
  searcher.search([&](const Permutation&) {
    ++count;
    return count >= cap;
  });
  return count;
}

}  // namespace dip::graph
