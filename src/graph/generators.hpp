// Graph generators for workloads: classic families, random models, and
// verified rigid / symmetric instance factories used by the experiments.
#pragma once

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dip::graph {

Graph pathGraph(std::size_t n);
Graph cycleGraph(std::size_t n);
Graph completeGraph(std::size_t n);
Graph starGraph(std::size_t n);  // Vertex 0 is the hub.
Graph gridGraph(std::size_t rows, std::size_t cols);

// Erdos-Renyi G(n, p).
Graph erdosRenyi(std::size_t n, double edgeProbability, util::Rng& rng);
// Uniform random spanning-tree-shaped graph (random recursive tree).
Graph randomTree(std::size_t n, util::Rng& rng);
// Random connected graph: random tree plus `extraEdges` uniform extra edges.
Graph randomConnected(std::size_t n, std::size_t extraEdges, util::Rng& rng);

// A connected RIGID (asymmetric) graph on n vertices, found by rejection
// sampling G(n, 1/2) and verifying rigidity; requires n >= 6 (smaller graphs
// are never both connected and rigid). Used for NO-instances of Sym and for
// the family F of the lower bound.
Graph randomRigidConnected(std::size_t n, util::Rng& rng);

// A connected SYMMETRIC graph on n vertices (n even, n >= 2): the prism
// H x K2 over a random connected H, whose layer swap is an automorphism.
Graph randomSymmetricConnected(std::size_t n, util::Rng& rng);

// A uniformly random permutation of {0, ..., n-1}.
Permutation randomPermutation(std::size_t n, util::Rng& rng);

// g relabeled by a fresh uniform permutation (an isomorphic copy).
Graph randomIsomorphicCopy(const Graph& g, util::Rng& rng);

// ---- CSR-native sparse families (large n, no dense intermediate) ----
//
// These build `CsrGraph` from O(m) edge buffers, so n = 10^6 instances fit
// in tens of megabytes where the dense constructors would need ~125 GB.
// The random generators consume their Rng in a documented draw order so
// equal seeds give equal graphs across representations where a dense twin
// exists (csrRandomTree matches randomTree draw-for-draw).

CsrGraph csrPathGraph(std::size_t n);
CsrGraph csrStarGraph(std::size_t n);  // Vertex 0 is the hub.
CsrGraph csrGridGraph(std::size_t rows, std::size_t cols);

// Random recursive tree; identical edges to randomTree(n, rng) for equal rng
// state (one nextBelow(v) draw per vertex v = 1..n-1).
CsrGraph csrRandomTree(std::size_t n, util::Rng& rng);

// Connected random graph with every degree <= maxDegree (requires
// maxDegree >= 2): a degree-capped random recursive tree (draw a parent
// below v; on a full parent, probe downward cyclically to the nearest
// vertex with spare capacity) plus up to extraEdges uniform extra edges
// that respect the cap.
CsrGraph csrRandomBoundedDegree(std::size_t n, std::size_t maxDegree,
                                std::size_t extraEdges, util::Rng& rng);

// DSym YES-instance (Definition 5 layout, see graph/builders.hpp) over a
// random recursive tree side: equal-seed twin of
// dsymInstance(randomTree(sideSize, rng), pathRadius), built edge-list
// native for large sideSize.
CsrGraph csrDsymOverTree(std::size_t sideSize, std::size_t pathRadius,
                         util::Rng& rng);

}  // namespace dip::graph
