// Graph generators for workloads: classic families, random models, and
// verified rigid / symmetric instance factories used by the experiments.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dip::graph {

Graph pathGraph(std::size_t n);
Graph cycleGraph(std::size_t n);
Graph completeGraph(std::size_t n);
Graph starGraph(std::size_t n);  // Vertex 0 is the hub.
Graph gridGraph(std::size_t rows, std::size_t cols);

// Erdos-Renyi G(n, p).
Graph erdosRenyi(std::size_t n, double edgeProbability, util::Rng& rng);
// Uniform random spanning-tree-shaped graph (random recursive tree).
Graph randomTree(std::size_t n, util::Rng& rng);
// Random connected graph: random tree plus `extraEdges` uniform extra edges.
Graph randomConnected(std::size_t n, std::size_t extraEdges, util::Rng& rng);

// A connected RIGID (asymmetric) graph on n vertices, found by rejection
// sampling G(n, 1/2) and verifying rigidity; requires n >= 6 (smaller graphs
// are never both connected and rigid). Used for NO-instances of Sym and for
// the family F of the lower bound.
Graph randomRigidConnected(std::size_t n, util::Rng& rng);

// A connected SYMMETRIC graph on n vertices (n even, n >= 2): the prism
// H x K2 over a random connected H, whose layer swap is an automorphism.
Graph randomSymmetricConnected(std::size_t n, util::Rng& rng);

// A uniformly random permutation of {0, ..., n-1}.
Permutation randomPermutation(std::size_t n, util::Rng& rng);

// g relabeled by a fresh uniform permutation (an isomorphic copy).
Graph randomIsomorphicCopy(const Graph& g, util::Rng& rng);

}  // namespace dip::graph
