// Canonical forms for small graphs.
//
// The lower-bound census counts isomorphism classes by Burnside's lemma; a
// canonical form gives an INDEPENDENT way to count (deduplicate canonical
// encodings) and a fast isomorphism decision for tiny graphs — both used as
// cross-validation of the search engine.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dip::graph {

// The lexicographically smallest upper-triangle encoding over all vertex
// relabelings — a complete isomorphism invariant. Brute force over n!
// permutations; intended for n <= 8.
std::vector<std::uint8_t> canonicalForm(const Graph& g);

// Isomorphism via canonical forms (small graphs only).
bool isomorphicByCanonicalForm(const Graph& g0, const Graph& g1);

// Number of isomorphism classes among all graphs on n vertices, counted by
// canonical-form deduplication (exhaustive; n <= 5 is instant, n = 6 takes
// a few seconds). Cross-validates lb::exhaustiveCensus.
std::uint64_t countIsoClassesByCanonicalForm(std::size_t n);

}  // namespace dip::graph
