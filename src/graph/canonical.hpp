// Canonical forms for small graphs.
//
// The lower-bound census counts isomorphism classes by Burnside's lemma; a
// canonical form gives an INDEPENDENT way to count (deduplicate canonical
// encodings) and a fast isomorphism decision for tiny graphs — both used as
// cross-validation of the search engine.
//
// The canonical form is the lexicographically smallest colex upper-triangle
// encoding over all vertex relabelings. Colex order (pairs (u, v), u < v,
// sorted by v then u) is chosen so that placing vertices one position at a
// time reveals a contiguous prefix of the encoding: position k contributes
// the k bits pairing it with positions 0..k-1. That makes the encoding
// branch-and-boundable; a row-major encoding would scatter each new
// position's bits across the string.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dip::graph {

// The canonical form of g: minimum colex encoding over all n! relabelings,
// computed by branch-and-bound with automorphism orbit pruning (generators
// from the IR engine). Exact for any graph with n <= 64.
std::vector<std::uint8_t> canonicalForm(const Graph& g);

// Reference implementation: minimum over an explicit sweep of all n!
// permutations. Intended for n <= 8; the differential-testing oracle for
// canonicalForm.
std::vector<std::uint8_t> bruteForceCanonicalForm(const Graph& g);

// Process-wide memoized canonicalForm, single-flight per distinct graph:
// when many trial-engine workers ask for the same graph's form
// concurrently, exactly one computes it and the rest wait on the entry.
// Same design as util::cachedPrimeInRange.
std::vector<std::uint8_t> cachedCanonicalForm(const Graph& g);

// Number of canonical-form searches actually performed by the cache (cache
// misses); lets tests assert the single-flight property.
std::size_t canonicalFormCacheSearches();
void canonicalFormCacheResetForTests();

// Isomorphism via canonical forms (small graphs only). Memoized, so
// repeated queries against the same graphs cost one search each.
bool isomorphicByCanonicalForm(const Graph& g0, const Graph& g1);

// Number of isomorphism classes among all graphs on n vertices, counted by
// canonical-form deduplication (exhaustive over all 2^(n(n-1)/2) labeled
// graphs; n <= 6 takes a few seconds, n = 7 minutes). Cross-validates
// lb::exhaustiveCensus.
std::uint64_t countIsoClassesByCanonicalForm(std::size_t n);

}  // namespace dip::graph
