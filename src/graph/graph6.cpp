#include "graph/graph6.hpp"

#include <stdexcept>

namespace dip::graph {

std::string toGraph6(const Graph& g) {
  const std::size_t n = g.numVertices();
  if (n > 62) throw std::invalid_argument("toGraph6: supports n <= 62");
  std::string out;
  out.push_back(static_cast<char>(n + 63));

  // Upper-triangle bits in column order: for column i, rows j < i.
  std::size_t accumulator = 0;
  int bitsInGroup = 0;
  for (Vertex i = 1; i < n; ++i) {
    for (Vertex j = 0; j < i; ++j) {
      accumulator = (accumulator << 1) | (g.hasEdge(j, i) ? 1u : 0u);
      if (++bitsInGroup == 6) {
        out.push_back(static_cast<char>(accumulator + 63));
        accumulator = 0;
        bitsInGroup = 0;
      }
    }
  }
  if (bitsInGroup > 0) {
    accumulator <<= (6 - bitsInGroup);  // Pad with zeros on the right.
    out.push_back(static_cast<char>(accumulator + 63));
  }
  return out;
}

Graph fromGraph6(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("fromGraph6: empty string");
  const int sizeByte = static_cast<unsigned char>(text[0]);
  if (sizeByte < 63 || sizeByte > 63 + 62) {
    throw std::invalid_argument("fromGraph6: unsupported size byte");
  }
  const std::size_t n = static_cast<std::size_t>(sizeByte - 63);
  const std::size_t edgeBits = n * (n - 1) / 2;
  const std::size_t expectedGroups = (edgeBits + 5) / 6;
  if (text.size() != 1 + expectedGroups) {
    throw std::invalid_argument("fromGraph6: wrong length for size");
  }

  Graph g(n);
  std::size_t bitIndex = 0;
  for (std::size_t group = 0; group < expectedGroups; ++group) {
    int value = static_cast<unsigned char>(text[1 + group]) - 63;
    if (value < 0 || value > 63) throw std::invalid_argument("fromGraph6: bad byte");
    for (int bit = 5; bit >= 0 && bitIndex < edgeBits; --bit, ++bitIndex) {
      if ((value >> bit) & 1) {
        // Recover (column i, row j) from the linear index.
        std::size_t remaining = bitIndex;
        Vertex i = 1;
        while (remaining >= i) {
          remaining -= i;
          ++i;
        }
        g.addEdge(static_cast<Vertex>(remaining), i);
      }
    }
  }
  return g;
}

}  // namespace dip::graph
