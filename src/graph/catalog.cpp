#include "graph/catalog.hpp"

#include <stdexcept>

namespace dip::graph {

Graph fromLcfNotation(std::size_t n, const std::vector<int>& shifts) {
  if (n < 3 || shifts.empty()) throw std::invalid_argument("fromLcfNotation: bad input");
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  g.addEdge(static_cast<Vertex>(n - 1), 0);
  for (std::size_t i = 0; i < n; ++i) {
    long shift = shifts[i % shifts.size()];
    long target = (static_cast<long>(i) + shift) % static_cast<long>(n);
    if (target < 0) target += static_cast<long>(n);
    g.addEdge(static_cast<Vertex>(i), static_cast<Vertex>(target));
  }
  return g;
}

Graph petersenGraph() {
  Graph g(10);
  for (Vertex i = 0; i < 5; ++i) {
    g.addEdge(i, (i + 1) % 5);                      // Outer pentagon.
    g.addEdge(i, i + 5);                            // Spokes.
    g.addEdge(5 + i, 5 + ((i + 2) % 5));            // Inner pentagram.
  }
  return g;
}

Graph fruchtGraph() {
  return fromLcfNotation(12, {-5, -2, -4, 2, 5, -2, 2, 5, -2, -5, 4, 2});
}

Graph heawoodGraph() { return fromLcfNotation(14, {5, -5}); }

Graph completeBipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex w = 0; w < b; ++w) {
      g.addEdge(u, static_cast<Vertex>(a + w));
    }
  }
  return g;
}

Graph hypercubeGraph(unsigned dimension) {
  if (dimension > 16) throw std::invalid_argument("hypercubeGraph: dimension too large");
  const std::size_t n = 1ull << dimension;
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dimension; ++bit) {
      Vertex u = v ^ (1u << bit);
      if (u > v) g.addEdge(v, u);
    }
  }
  return g;
}

}  // namespace dip::graph
