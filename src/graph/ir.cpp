#include "graph/ir.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dip::graph {

namespace {

inline std::uint32_t popcount64(std::uint64_t word) {
  return static_cast<std::uint32_t>(__builtin_popcountll(word));
}

}  // namespace

void IrSolver::prepare(std::size_t n) {
  n_ = n;
  words_ = (n + 63) / 64;
  if (inQueue_.size() != n) inQueue_.assign(n, 0);
  if (mask_.size() != words_) mask_.assign(words_, 0);
  mapBuf_.resize(n);
  queue_.clear();
  queueHead_ = 0;
  queue_.reserve(n + 1);
}

void IrSolver::loadRows(const Graph& g, std::vector<std::uint64_t>& rows) {
  const std::size_t n = g.numVertices();
  rows.assign(n * words_, 0);
  for (Vertex v = 0; v < n; ++v) {
    const util::DynBitset& row = g.row(v);
    std::memcpy(rows.data() + std::size_t(v) * words_, row.words(),
                row.wordCount() * sizeof(std::uint64_t));
  }
}

void IrSolver::initUnit(Coloring& c) {
  const std::size_t n = n_;
  c.order.resize(n);
  c.pos.resize(n);
  c.cellStart.resize(n);
  c.cellLen.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.order[i] = static_cast<Vertex>(i);
    c.pos[i] = static_cast<std::int32_t>(i);
    c.cellStart[i] = 0;
  }
  if (n > 0) c.cellLen[0] = static_cast<std::int32_t>(n);
  c.singletons = (n == 1) ? 1 : 0;
  queue_.clear();
  queueHead_ = 0;
  if (n > 0) pushQueue(0);
}

void IrSolver::pushQueue(std::int32_t start) {
  if (!inQueue_[static_cast<std::size_t>(start)]) {
    inQueue_[static_cast<std::size_t>(start)] = 1;
    queue_.push_back(start);
  }
}

void IrSolver::individualize(Coloring& c, Vertex v) {
  const std::int32_t pv = c.pos[v];
  const std::int32_t s = c.cellStart[pv];
  const std::int32_t len = c.cellLen[s];
  const Vertex w = c.order[s];
  c.order[s] = v;
  c.order[pv] = w;
  c.pos[v] = s;
  c.pos[w] = pv;
  if (len > 1) {
    c.cellLen[s] = 1;
    c.cellLen[s + 1] = len - 1;
    for (std::int32_t q = s + 1; q < s + len; ++q) c.cellStart[q] = s + 1;
    c.singletons += (len == 2) ? 2 : 1;
  }
  // The fresh singleton is the only splitter the next refinement needs: all
  // other cells were already equitable against the pre-split partition.
  queue_.clear();
  queueHead_ = 0;
  pushQueue(s);
}

bool IrSolver::splitCell(Coloring& c, const std::uint64_t* rows, std::int32_t p,
                        std::int32_t len, std::int32_t splitter, TraceMode mode,
                        std::vector<std::uint64_t>* trace) {
  // Count each member's neighbors inside the splitter set.
  sortBuf_.clear();
  bool uniform = true;
  std::uint32_t firstCount = 0;
  if (words_ == 1) {
    const std::uint64_t m0 = mask_[0];
    for (std::int32_t i = p; i < p + len; ++i) {
      const Vertex v = c.order[i];
      const std::uint32_t cnt = popcount64(rows[v] & m0);
      if (i == p) {
        firstCount = cnt;
      } else if (cnt != firstCount) {
        uniform = false;
      }
      sortBuf_.emplace_back(cnt, v);
    }
  } else {
    for (std::int32_t i = p; i < p + len; ++i) {
      const Vertex v = c.order[i];
      const std::uint64_t* row = rows + std::size_t(v) * words_;
      std::uint32_t cnt = 0;
      for (std::size_t w = 0; w < words_; ++w) cnt += popcount64(row[w] & mask_[w]);
      if (i == p) {
        firstCount = cnt;
      } else if (cnt != firstCount) {
        uniform = false;
      }
      sortBuf_.emplace_back(cnt, v);
    }
  }
  if (uniform) return true;  // No split, no trace event.

  // Insertion sort by count: cells are small and the no-allocation property
  // matters more than asymptotics in the census inner loop.
  for (std::int32_t i = 1; i < len; ++i) {
    const auto item = sortBuf_[static_cast<std::size_t>(i)];
    std::int32_t j = i - 1;
    while (j >= 0 && sortBuf_[static_cast<std::size_t>(j)].first > item.first) {
      sortBuf_[static_cast<std::size_t>(j + 1)] = sortBuf_[static_cast<std::size_t>(j)];
      --j;
    }
    sortBuf_[static_cast<std::size_t>(j + 1)] = item;
  }

  // Fragment boundaries (counts ascending).
  fragStart_.clear();
  fragLen_.clear();
  for (std::int32_t i = 0; i < len; ++i) {
    if (i == 0 || sortBuf_[static_cast<std::size_t>(i)].first !=
                      sortBuf_[static_cast<std::size_t>(i - 1)].first) {
      fragStart_.push_back(p + i);
      fragLen_.push_back(1);
    } else {
      ++fragLen_.back();
    }
  }

  // Emit (record) or match (check) the trace event for this split. Both
  // sides of a lockstep search execute identical control flow while their
  // events agree, so the first mismatch is the first structural divergence.
  auto emit = [&](std::uint64_t value) -> bool {
    if (mode == TraceMode::kRecord) {
      trace->push_back(value);
      return true;
    }
    if (mode == TraceMode::kCheck) {
      if (traceCursor_ >= trace->size() || (*trace)[traceCursor_] != value) return false;
      ++traceCursor_;
      return true;
    }
    return true;
  };
  if (!emit((static_cast<std::uint64_t>(static_cast<std::uint32_t>(splitter)) << 32) |
            static_cast<std::uint32_t>(p))) {
    return false;
  }
  if (!emit(fragStart_.size())) return false;
  for (std::size_t k = 0; k < fragStart_.size(); ++k) {
    const std::uint32_t cnt =
        sortBuf_[static_cast<std::size_t>(fragStart_[k] - p)].first;
    if (!emit((static_cast<std::uint64_t>(cnt) << 32) |
              static_cast<std::uint32_t>(fragLen_[k]))) {
      return false;
    }
  }

  // Rewrite the slice cell by cell.
  const bool parentQueued = inQueue_[static_cast<std::size_t>(p)] != 0;
  for (std::size_t k = 0; k < fragStart_.size(); ++k) {
    const std::int32_t fs = fragStart_[k];
    const std::int32_t fl = fragLen_[k];
    c.cellLen[fs] = fl;
    if (fl == 1) ++c.singletons;
    for (std::int32_t q = fs; q < fs + fl; ++q) {
      const Vertex v = sortBuf_[static_cast<std::size_t>(q - p)].second;
      c.order[q] = v;
      c.pos[v] = q;
      c.cellStart[q] = fs;
    }
  }

  // Hopcroft rule: if the parent was pending, all fragments must be pending
  // (the first inherits the flag sitting at position p); otherwise all but
  // one largest fragment suffice.
  if (parentQueued) {
    for (std::size_t k = 1; k < fragStart_.size(); ++k) pushQueue(fragStart_[k]);
  } else {
    std::size_t largest = 0;
    for (std::size_t k = 1; k < fragStart_.size(); ++k) {
      if (fragLen_[k] > fragLen_[largest]) largest = k;
    }
    for (std::size_t k = 0; k < fragStart_.size(); ++k) {
      if (k != largest) pushQueue(fragStart_[k]);
    }
  }
  return true;
}

bool IrSolver::refine(Coloring& c, const std::uint64_t* rows, TraceMode mode,
                      std::vector<std::uint64_t>* trace) {
  const std::int32_t n = static_cast<std::int32_t>(n_);
  bool ok = true;
  while (queueHead_ < queue_.size()) {
    const std::int32_t s = queue_[queueHead_++];
    inQueue_[static_cast<std::size_t>(s)] = 0;
    if (c.singletons == n) continue;  // Discrete; just drain the flags.
    // Splitter mask over the current cell at s.
    std::fill(mask_.begin(), mask_.end(), 0);
    const std::int32_t sLen = c.cellLen[s];
    for (std::int32_t i = s; i < s + sLen; ++i) {
      const Vertex v = c.order[i];
      mask_[v >> 6] |= 1ull << (v & 63);
    }
    std::int32_t p = 0;
    while (p < n) {
      const std::int32_t len = c.cellLen[p];
      const std::int32_t next = p + len;
      if (len > 1 && !splitCell(c, rows, p, len, s, mode, trace)) {
        ok = false;
        break;
      }
      p = next;
    }
    if (!ok) break;
  }
  for (std::size_t i = queueHead_; i < queue_.size(); ++i) {
    inQueue_[static_cast<std::size_t>(queue_[i])] = 0;
  }
  queue_.clear();
  queueHead_ = 0;
  // A check-side refinement must consume the whole recorded trace: a left
  // split with no right counterpart is a divergence too.
  if (ok && mode == TraceMode::kCheck) ok = traceCursor_ == trace->size();
  return ok;
}

std::int32_t IrSolver::targetCell(const Coloring& c) const {
  const std::int32_t n = static_cast<std::int32_t>(n_);
  std::int32_t best = -1;
  std::int32_t bestLen = n + 1;
  for (std::int32_t p = 0; p < n; p += c.cellLen[p]) {
    const std::int32_t len = c.cellLen[p];
    if (len > 1 && len < bestLen) {
      best = p;
      bestLen = len;
      if (len == 2) break;
    }
  }
  return best;
}

bool IrSolver::verifyMapping(const Coloring& left, const Coloring& right) {
  for (std::size_t i = 0; i < n_; ++i) mapBuf_[left.order[i]] = right.order[i];
  for (Vertex a = 0; a < n_; ++a) {
    const std::uint64_t* rowL = leftRows_ + std::size_t(a) * words_;
    const std::uint64_t* rowR = rightRows_ + std::size_t(mapBuf_[a]) * words_;
    std::uint32_t degL = 0;
    std::uint32_t degR = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      degL += popcount64(rowL[w]);
      degR += popcount64(rowR[w]);
    }
    if (degL != degR) return false;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = rowL[w];
      while (word) {
        const Vertex b =
            static_cast<Vertex>(w * 64 + static_cast<unsigned>(__builtin_ctzll(word)));
        word &= word - 1;
        const Vertex bm = mapBuf_[b];
        if (!((rowR[bm >> 6] >> (bm & 63)) & 1ull)) return false;
      }
    }
  }
  return true;
}

void IrSolver::ensureChain(std::size_t depth) {
  while (chain_.size() <= depth) chain_.emplace_back();
  while (chainTraces_.size() <= depth) chainTraces_.emplace_back();
}

void IrSolver::ensurePair(std::size_t depth) {
  while (pairLeft_.size() <= depth) pairLeft_.emplace_back();
  while (pairRight_.size() <= depth) pairRight_.emplace_back();
  while (pairTraces_.size() <= depth) pairTraces_.emplace_back();
}

// colL/colR at `depth` hold a matched pair of refined colorings. Finds any
// completion to a verified isomorphism; the witness is left in mapBuf_.
bool IrSolver::pairSearchFirst(std::size_t depth) {
  ensurePair(depth + 1);
  Coloring& left = pairLeft_[depth];
  const std::int32_t t = targetCell(left);
  if (t < 0) return verifyMapping(left, pairRight_[depth]);

  const Vertex v = left.order[t];
  const std::int32_t tl = left.cellLen[t];
  std::vector<std::uint64_t>& trace = pairTraces_[depth];
  trace.clear();
  pairLeft_[depth + 1] = left;
  individualize(pairLeft_[depth + 1], v);
  refine(pairLeft_[depth + 1], leftRows_, TraceMode::kRecord, &trace);
  for (std::int32_t i = t; i < t + tl; ++i) {
    const Vertex u = pairRight_[depth].order[i];
    pairRight_[depth + 1] = pairRight_[depth];
    individualize(pairRight_[depth + 1], u);
    traceCursor_ = 0;
    if (!refine(pairRight_[depth + 1], rightRows_, TraceMode::kCheck, &trace)) continue;
    if (pairSearchFirst(depth + 1)) return true;
  }
  return false;
}

// Full-group enumeration from a matched pair at `depth`; returns true once
// `cap` elements have been collected (stop signal, not failure).
bool IrSolver::enumSearch(std::size_t depth, std::size_t cap,
                          std::vector<Permutation>& out) {
  ensurePair(depth + 1);
  Coloring& left = pairLeft_[depth];
  const std::int32_t t = targetCell(left);
  if (t < 0) {
    if (verifyMapping(left, pairRight_[depth])) out.push_back(mapBuf_);
    return out.size() >= cap;
  }

  const Vertex v = left.order[t];
  const std::int32_t tl = left.cellLen[t];
  std::vector<std::uint64_t>& trace = pairTraces_[depth];
  trace.clear();
  pairLeft_[depth + 1] = left;
  individualize(pairLeft_[depth + 1], v);
  refine(pairLeft_[depth + 1], leftRows_, TraceMode::kRecord, &trace);
  for (std::int32_t i = t; i < t + tl; ++i) {
    const Vertex u = pairRight_[depth].order[i];
    pairRight_[depth + 1] = pairRight_[depth];
    individualize(pairRight_[depth + 1], u);
    traceCursor_ = 0;
    if (!refine(pairRight_[depth + 1], rightRows_, TraceMode::kCheck, &trace)) continue;
    if (enumSearch(depth + 1, cap, out)) return true;
  }
  return false;
}

Vertex IrSolver::ufFind(Vertex v) {
  while (ufParent_[v] != v) {
    ufParent_[v] = ufParent_[ufParent_[v]];  // Path halving.
    v = ufParent_[v];
  }
  return v;
}

void IrSolver::recordGenerator() {
  gens_.push_back(mapBuf_);
  for (Vertex a = 0; a < n_; ++a) {
    const Vertex ra = ufFind(a);
    const Vertex rb = ufFind(mapBuf_[a]);
    if (ra != rb) ufParent_[ra] = rb;
  }
}

// chain_[level] holds a refined coloring with the branch vertices of all
// shallower levels individualized. Walks one level deeper on the first
// vertex of the target cell, then resolves the level's orbit: for every
// other cell member u, either a previously found generator already places u
// in the branch vertex's orbit (prune — no search), or a lockstep pair
// search decides whether some automorphism fixing the prefix maps v to u.
// |Aut| = orbit size at this level x |stabilizer| from the level below.
std::uint64_t IrSolver::groupSizeRec(std::size_t level) {
  ensureChain(level + 1);
  const std::int32_t t = targetCell(chain_[level]);
  if (t < 0) return 1;

  const Vertex v = chain_[level].order[t];
  const std::int32_t tl = chain_[level].cellLen[t];
  std::vector<std::uint64_t>& trace = chainTraces_[level];
  trace.clear();
  chain_[level + 1] = chain_[level];
  individualize(chain_[level + 1], v);
  refine(chain_[level + 1], leftRows_, TraceMode::kRecord, &trace);

  const std::uint64_t stabilizer = groupSizeRec(level + 1);

  std::uint64_t orbitSize = 1;
  for (std::int32_t i = t; i < t + tl; ++i) {
    const Vertex u = chain_[level].order[i];
    if (u == v) continue;
    if (ufFind(u) == ufFind(v)) {
      // Orbit pruning: some product of discovered generators (all of which
      // fix the individualized prefix) already maps v to u.
      ++orbitSize;
      continue;
    }
    ensurePair(0);
    pairLeft_[0] = chain_[level + 1];
    pairRight_[0] = chain_[level];
    individualize(pairRight_[0], u);
    traceCursor_ = 0;
    if (!refine(pairRight_[0], rightRows_, TraceMode::kCheck, &trace)) continue;
    if (pairSearchFirst(0)) {
      recordGenerator();
      ++orbitSize;
    }
  }
  if (stabilizer != 0 && orbitSize > UINT64_MAX / stabilizer) return UINT64_MAX;
  return orbitSize * stabilizer;
}

// Same chain walk as groupSizeRec, but stops at the first witness. Tries the
// pair searches at each level before descending so highly symmetric graphs
// exit on their shallowest moved vertex.
bool IrSolver::findNontrivialRec(std::size_t level) {
  ensureChain(level + 1);
  const std::int32_t t = targetCell(chain_[level]);
  if (t < 0) return false;

  const Vertex v = chain_[level].order[t];
  const std::int32_t tl = chain_[level].cellLen[t];
  std::vector<std::uint64_t>& trace = chainTraces_[level];
  trace.clear();
  chain_[level + 1] = chain_[level];
  individualize(chain_[level + 1], v);
  refine(chain_[level + 1], leftRows_, TraceMode::kRecord, &trace);

  for (std::int32_t i = t; i < t + tl; ++i) {
    const Vertex u = chain_[level].order[i];
    if (u == v) continue;
    ensurePair(0);
    pairLeft_[0] = chain_[level + 1];
    pairRight_[0] = chain_[level];
    individualize(pairRight_[0], u);
    traceCursor_ = 0;
    if (!refine(pairRight_[0], rightRows_, TraceMode::kCheck, &trace)) continue;
    if (pairSearchFirst(0)) return true;
  }
  return findNontrivialRec(level + 1);
}

bool IrSolver::isRigid(const Graph& g) {
  const std::size_t n = g.numVertices();
  if (n < 2) return true;
  prepare(n);
  loadRows(g, rowsLeft_);
  leftRows_ = rightRows_ = rowsLeft_.data();
  ensureChain(0);
  initUnit(chain_[0]);
  refine(chain_[0], leftRows_, TraceMode::kNone, nullptr);
  if (chain_[0].singletons == static_cast<std::int32_t>(n)) return true;
  return !findNontrivialRec(0);
}

bool IrSolver::isRigidCode(std::size_t n, std::uint64_t code) {
  if (n < 2) return true;
  prepare(n);
  rowsLeft_.assign(n, 0);  // words_ == 1 whenever n(n-1)/2 <= 64.
  std::size_t index = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v, ++index) {
      if ((code >> index) & 1ull) {
        rowsLeft_[u] |= 1ull << v;
        rowsLeft_[v] |= 1ull << u;
      }
    }
  }
  // Twin prefilter: the transposition (u v) is an automorphism iff
  // N(u)\{v} == N(v)\{u}; one word compare per pair kills the bulk of the
  // non-rigid graphs before any partition machinery runs.
  for (Vertex u = 0; u + 1 < n; ++u) {
    const std::uint64_t rowU = rowsLeft_[u];
    for (Vertex v = u + 1; v < n; ++v) {
      if ((rowU & ~(1ull << v)) == (rowsLeft_[v] & ~(1ull << u))) return false;
    }
  }
  leftRows_ = rightRows_ = rowsLeft_.data();
  ensureChain(0);
  initUnit(chain_[0]);
  refine(chain_[0], leftRows_, TraceMode::kNone, nullptr);
  if (chain_[0].singletons == static_cast<std::int32_t>(n)) return true;
  return !findNontrivialRec(0);
}

std::optional<Permutation> IrSolver::findNontrivialAutomorphism(const Graph& g) {
  const std::size_t n = g.numVertices();
  if (n < 2) return std::nullopt;
  prepare(n);
  loadRows(g, rowsLeft_);
  leftRows_ = rightRows_ = rowsLeft_.data();
  ensureChain(0);
  initUnit(chain_[0]);
  refine(chain_[0], leftRows_, TraceMode::kNone, nullptr);
  if (chain_[0].singletons == static_cast<std::int32_t>(n)) return std::nullopt;
  if (!findNontrivialRec(0)) return std::nullopt;
  return Permutation(mapBuf_.begin(), mapBuf_.end());
}

std::uint64_t IrSolver::countAutomorphisms(const Graph& g, std::uint64_t cap) {
  const std::size_t n = g.numVertices();
  if (n < 2) return std::min<std::uint64_t>(1, cap);
  prepare(n);
  loadRows(g, rowsLeft_);
  leftRows_ = rightRows_ = rowsLeft_.data();
  ensureChain(0);
  initUnit(chain_[0]);
  refine(chain_[0], leftRows_, TraceMode::kNone, nullptr);
  gens_.clear();
  ufParent_.resize(n);
  for (Vertex v = 0; v < n; ++v) ufParent_[v] = v;
  return std::min(groupSizeRec(0), cap);
}

std::vector<Permutation> IrSolver::automorphismGenerators(const Graph& g) {
  countAutomorphisms(g, UINT64_MAX);
  return gens_;
}

std::vector<Permutation> IrSolver::allAutomorphisms(const Graph& g, std::size_t cap) {
  std::vector<Permutation> out;
  const std::size_t n = g.numVertices();
  if (cap == 0) return out;
  if (n < 2) {
    out.push_back(identityPermutation(n));
    return out;
  }
  prepare(n);
  loadRows(g, rowsLeft_);
  leftRows_ = rightRows_ = rowsLeft_.data();
  ensurePair(0);
  initUnit(pairLeft_[0]);
  refine(pairLeft_[0], leftRows_, TraceMode::kNone, nullptr);
  pairRight_[0] = pairLeft_[0];
  enumSearch(0, cap, out);
  return out;
}

std::optional<Permutation> IrSolver::findIsomorphism(const Graph& g0, const Graph& g1) {
  const std::size_t n = g0.numVertices();
  if (n != g1.numVertices()) return std::nullopt;
  if (g0.numEdges() != g1.numEdges()) return std::nullopt;
  if (n == 0) return Permutation{};
  prepare(n);
  loadRows(g0, rowsLeft_);
  loadRows(g1, rowsRight_);
  leftRows_ = rowsLeft_.data();
  rightRows_ = rowsRight_.data();
  ensurePair(0);
  initTrace_.clear();
  initUnit(pairLeft_[0]);
  refine(pairLeft_[0], leftRows_, TraceMode::kRecord, &initTrace_);
  initUnit(pairRight_[0]);
  traceCursor_ = 0;
  if (!refine(pairRight_[0], rightRows_, TraceMode::kCheck, &initTrace_)) {
    return std::nullopt;
  }
  if (!pairSearchFirst(0)) return std::nullopt;
  return Permutation(mapBuf_.begin(), mapBuf_.end());
}

}  // namespace dip::graph
