// Individualization-refinement (IR) search engine — the fast substrate under
// every honest-prover search in the experiments.
//
// A miniature nauty: an equitable partition refiner over packed bitset rows,
// a lockstep two-sided backtracking search for isomorphisms (each side
// refines its own ordered partition; a recorded refinement trace from the
// left side prunes the right side at the first structural divergence), and
// an automorphism-group engine that discovers generators and multiplies the
// group order out of the orbit-stabilizer chain — found automorphisms merge
// an orbit partition that prunes sibling branches instead of re-searching
// them ("orbit pruning").
//
// Everything here is exact: refinement is only ever used as an
// isomorphism-invariant pruning function, and every complete leaf mapping is
// verified edge-by-edge before it is believed. Worst-case exponential (graph
// isomorphism), fast on the random, structured, and exhaustively-enumerated
// instances the experiments sweep.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dip::graph {

// Reusable searcher: one instance recycles its workspace across calls, so
// sweeping hundreds of millions of census graphs through a single solver
// performs no steady-state allocation. Not thread-safe; use one solver per
// trial-engine worker.
class IrSolver {
 public:
  IrSolver() = default;

  // True iff g has only the trivial automorphism. Fast path: if equitable
  // refinement of the unit partition is already discrete, g is rigid.
  bool isRigid(const Graph& g);

  // Rigidity straight from an upper-triangle code (n(n-1)/2 <= 64), no Graph
  // construction at all — the census sweep's innermost call.
  bool isRigidCode(std::size_t n, std::uint64_t code);

  std::optional<Permutation> findNontrivialAutomorphism(const Graph& g);

  // Exact |Aut(g)| via the orbit-stabilizer chain (saturating at 2^64 - 1),
  // clamped to `cap`. Never enumerates the group.
  std::uint64_t countAutomorphisms(const Graph& g, std::uint64_t cap = UINT64_MAX);

  // Generators discovered along the orbit-stabilizer chain; together they
  // generate Aut(g) (coset representatives of each stabilizer step).
  std::vector<Permutation> automorphismGenerators(const Graph& g);

  // Full group enumeration (identity included), up to `cap` elements, in a
  // deterministic search order. Refinement-pruned but orbit-unpruned — every
  // element must be emitted, not just representatives.
  std::vector<Permutation> allAutomorphisms(const Graph& g, std::size_t cap);

  std::optional<Permutation> findIsomorphism(const Graph& g0, const Graph& g1);

 private:
  // Ordered partition of the vertices: `order` lists vertices cell by cell,
  // `cellStart[p]` maps a position to its cell's first position, `cellLen`
  // is meaningful at cell-start positions only.
  struct Coloring {
    std::vector<Vertex> order;
    std::vector<std::int32_t> pos;
    std::vector<std::int32_t> cellStart;
    std::vector<std::int32_t> cellLen;
    std::int32_t singletons = 0;
  };

  enum class TraceMode { kNone, kRecord, kCheck };

  void prepare(std::size_t n);
  void loadRows(const Graph& g, std::vector<std::uint64_t>& rows);
  void initUnit(Coloring& c);
  void individualize(Coloring& c, Vertex v);
  void pushQueue(std::int32_t start);
  bool refine(Coloring& c, const std::uint64_t* rows, TraceMode mode,
              std::vector<std::uint64_t>* trace);
  bool splitCell(Coloring& c, const std::uint64_t* rows, std::int32_t p,
                 std::int32_t len, std::int32_t splitter, TraceMode mode,
                 std::vector<std::uint64_t>* trace);
  std::int32_t targetCell(const Coloring& c) const;
  bool verifyMapping(const Coloring& left, const Coloring& right);

  bool pairSearchFirst(std::size_t depth);
  bool enumSearch(std::size_t depth, std::size_t cap,
                  std::vector<Permutation>& out);
  bool findNontrivialRec(std::size_t level);
  std::uint64_t groupSizeRec(std::size_t level);

  void ensureChain(std::size_t depth);
  void ensurePair(std::size_t depth);
  Vertex ufFind(Vertex v);
  void recordGenerator();

  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rowsLeft_;
  std::vector<std::uint64_t> rowsRight_;
  const std::uint64_t* leftRows_ = nullptr;
  const std::uint64_t* rightRows_ = nullptr;

  // Refinement scratch.
  std::vector<std::int32_t> queue_;
  std::size_t queueHead_ = 0;
  std::vector<std::uint8_t> inQueue_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::pair<std::uint32_t, Vertex>> sortBuf_;
  std::vector<std::int32_t> fragStart_;
  std::vector<std::int32_t> fragLen_;
  std::size_t traceCursor_ = 0;

  // Search state. Deques so growth never invalidates references held across
  // recursive calls.
  std::deque<Coloring> chain_;
  std::deque<std::vector<std::uint64_t>> chainTraces_;
  std::deque<Coloring> pairLeft_;
  std::deque<Coloring> pairRight_;
  std::deque<std::vector<std::uint64_t>> pairTraces_;
  std::vector<std::uint64_t> initTrace_;

  std::vector<Vertex> mapBuf_;  // Leaf mapping / witness under construction.
  std::vector<Permutation> gens_;
  std::vector<Vertex> ufParent_;
};

}  // namespace dip::graph
