#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dip::graph {

Graph::Graph(std::size_t numVertices) : n_(numVertices) {
  rows_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) rows_.emplace_back(n_);
}

Graph Graph::fromEdges(std::size_t numVertices,
                       std::initializer_list<std::pair<Vertex, Vertex>> edges) {
  Graph g(numVertices);
  for (auto [u, v] : edges) g.addEdge(u, v);
  return g;
}

void Graph::addEdge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) throw std::out_of_range("Graph::addEdge: vertex out of range");
  if (u == v) throw std::invalid_argument("Graph::addEdge: self-loop");
  if (rows_[u].test(v)) return;
  rows_[u].set(v);
  rows_[v].set(u);
  ++numEdges_;
}

bool Graph::hasEdge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) throw std::out_of_range("Graph::hasEdge: vertex out of range");
  if (u == v) return false;
  return rows_[u].test(v);
}

util::DynBitset Graph::closedRow(Vertex v) const {
  util::DynBitset closed = rows_[v];
  closed.set(v);
  return closed;
}

std::vector<Vertex> Graph::neighbors(Vertex v) const {
  std::vector<Vertex> out;
  out.reserve(degree(v));
  rows_[v].forEachSet([&](std::size_t u) { out.push_back(static_cast<Vertex>(u)); });
  return out;
}

std::vector<Vertex> Graph::closedNeighbors(Vertex v) const {
  std::vector<Vertex> out = neighbors(v);
  out.insert(std::lower_bound(out.begin(), out.end(), v), v);
  return out;
}

bool Graph::isConnected() const {
  if (n_ == 0) return true;
  std::vector<bool> seen(n_, false);
  std::vector<Vertex> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    Vertex v = stack.back();
    stack.pop_back();
    rows_[v].forEachSet([&](std::size_t u) {
      if (!seen[u]) {
        seen[u] = true;
        ++reached;
        stack.push_back(static_cast<Vertex>(u));
      }
    });
  }
  return reached == n_;
}

Graph Graph::relabeled(const Permutation& perm) const {
  if (!isPermutation(perm, n_)) {
    throw std::invalid_argument("Graph::relabeled: not a permutation");
  }
  Graph out(n_);
  for (Vertex v = 0; v < n_; ++v) {
    rows_[v].forEachSet([&](std::size_t u) {
      if (u > v) out.addEdge(perm[v], perm[static_cast<Vertex>(u)]);
    });
  }
  return out;
}

util::DynBitset Graph::imageOf(const util::DynBitset& subset, const Permutation& rho) {
  util::DynBitset image(subset.size());
  subset.forEachSet([&](std::size_t u) {
    if (rho[u] >= subset.size()) throw std::out_of_range("Graph::imageOf: image out of range");
    image.set(rho[u]);
  });
  return image;
}

bool Graph::operator==(const Graph& other) const {
  return n_ == other.n_ && rows_ == other.rows_;
}

util::DynBitset Graph::upperTriangleBits() const {
  util::DynBitset bits(n_ * (n_ - 1) / 2);
  std::size_t index = 0;
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v = u + 1; v < n_; ++v, ++index) {
      if (rows_[u].test(v)) bits.set(index);
    }
  }
  return bits;
}

Graph Graph::fromUpperTriangleBits(std::size_t numVertices, const util::DynBitset& bits) {
  if (bits.size() != numVertices * (numVertices - 1) / 2) {
    throw std::invalid_argument("Graph::fromUpperTriangleBits: size mismatch");
  }
  Graph g(numVertices);
  std::size_t index = 0;
  for (Vertex u = 0; u < numVertices; ++u) {
    for (Vertex v = u + 1; v < numVertices; ++v, ++index) {
      if (bits.test(index)) g.addEdge(u, v);
    }
  }
  return g;
}

Graph Graph::fromUpperTriangleCode(std::size_t numVertices, std::uint64_t code) {
  const std::size_t slots = numVertices * (numVertices - 1) / 2;
  if (slots > 64) {
    throw std::invalid_argument("Graph::fromUpperTriangleCode: needs n(n-1)/2 <= 64");
  }
  if (slots < 64 && (code >> slots) != 0) {
    throw std::invalid_argument("Graph::fromUpperTriangleCode: code exceeds slot count");
  }
  Graph g(numVertices);
  std::size_t index = 0;
  for (Vertex u = 0; u < numVertices; ++u) {
    for (Vertex v = u + 1; v < numVertices; ++v, ++index) {
      if ((code >> index) & 1ull) {
        g.rows_[u].set(v);
        g.rows_[v].set(u);
        ++g.numEdges_;
      }
    }
  }
  return g;
}

std::size_t Graph::hashValue() const {
  std::size_t h = n_;
  for (const auto& row : rows_) {
    h ^= row.hashValue() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool isPermutation(const Permutation& perm, std::size_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> hit(n, false);
  for (Vertex image : perm) {
    if (image >= n || hit[image]) return false;
    hit[image] = true;
  }
  return true;
}

bool isIdentity(const Permutation& perm) {
  for (std::size_t v = 0; v < perm.size(); ++v) {
    if (perm[v] != v) return false;
  }
  return true;
}

Permutation compose(const Permutation& perm, const Permutation& first) {
  if (perm.size() != first.size()) throw std::invalid_argument("compose: size mismatch");
  Permutation out(perm.size());
  for (std::size_t v = 0; v < perm.size(); ++v) out[v] = perm[first[v]];
  return out;
}

Permutation inverse(const Permutation& perm) {
  Permutation out(perm.size());
  for (std::size_t v = 0; v < perm.size(); ++v) out[perm[v]] = static_cast<Vertex>(v);
  return out;
}

Permutation identityPermutation(std::size_t n) {
  Permutation out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = static_cast<Vertex>(v);
  return out;
}

bool isAutomorphism(const Graph& g, const Permutation& rho) {
  if (!isPermutation(rho, g.numVertices())) return false;
  const std::size_t n = g.numVertices();
  for (Vertex u = 0; u < n; ++u) {
    // rho is an automorphism iff rho(N(u)) == N(rho(u)) for all u
    // (Observation 1 in the paper).
    if (Graph::imageOf(g.row(u), rho) != g.row(rho[u])) return false;
  }
  return true;
}

}  // namespace dip::graph
