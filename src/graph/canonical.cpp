#include "graph/canonical.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <stdexcept>

#include "util/bitset.hpp"

namespace dip::graph {

namespace {

// Upper-triangle bits of g relabeled by perm, packed into bytes.
std::vector<std::uint8_t> encodeUnder(const Graph& g, const Permutation& perm) {
  const std::size_t n = g.numVertices();
  const std::size_t slots = n * (n - 1) / 2;
  std::vector<std::uint8_t> bytes((slots + 7) / 8, 0);
  std::size_t index = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v, ++index) {
      if (g.hasEdge(perm[u], perm[v])) {
        bytes[index / 8] |= static_cast<std::uint8_t>(1u << (7 - index % 8));
      }
    }
  }
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> canonicalForm(const Graph& g) {
  const std::size_t n = g.numVertices();
  if (n > 8) throw std::invalid_argument("canonicalForm: brute force limited to n <= 8");
  Permutation perm = identityPermutation(n);
  std::vector<std::uint8_t> best = encodeUnder(g, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::vector<std::uint8_t> candidate = encodeUnder(g, perm);
    // Element-wise comparison (same length by construction).
    for (std::size_t i = 0; i < best.size(); ++i) {
      if (candidate[i] != best[i]) {
        if (candidate[i] < best[i]) best = std::move(candidate);
        break;
      }
    }
  }
  return best;
}

bool isomorphicByCanonicalForm(const Graph& g0, const Graph& g1) {
  if (g0.numVertices() != g1.numVertices()) return false;
  if (g0.numEdges() != g1.numEdges()) return false;
  return canonicalForm(g0) == canonicalForm(g1);
}

std::uint64_t countIsoClassesByCanonicalForm(std::size_t n) {
  if (n < 1 || n > 6) {
    throw std::invalid_argument("countIsoClassesByCanonicalForm: 1 <= n <= 6");
  }
  const std::size_t slots = n * (n - 1) / 2;
  std::set<std::string> forms;  // Strings sidestep a GCC-12 -Wstringop false positive.
  for (std::uint64_t code = 0; code < (1ull << slots); ++code) {
    util::DynBitset bits(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      if ((code >> i) & 1ull) bits.set(i);
    }
    std::vector<std::uint8_t> form = canonicalForm(Graph::fromUpperTriangleBits(n, bits));
    forms.emplace(form.begin(), form.end());
  }
  return forms.size();
}

}  // namespace dip::graph
