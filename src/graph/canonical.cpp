#include "graph/canonical.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "graph/ir.hpp"
#include "util/bitset.hpp"

namespace dip::graph {

namespace {

// Colex slot of the position pair (j, k), j < k: column k holds slots
// k(k-1)/2 .. k(k+1)/2 - 1, so placing position k reveals a contiguous run.
inline std::size_t colexSlot(std::size_t j, std::size_t k) {
  return k * (k - 1) / 2 + j;
}

// Colex upper-triangle bits of g relabeled by perm, packed MSB-first so a
// byte-wise lexicographic compare is a bit-wise one.
std::vector<std::uint8_t> encodeUnder(const Graph& g, const Permutation& perm) {
  const std::size_t n = g.numVertices();
  const std::size_t slots = n * (n - 1) / 2;
  std::vector<std::uint8_t> bytes((slots + 7) / 8, 0);
  for (std::size_t k = 1; k < n; ++k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (g.hasEdge(perm[j], perm[k])) {
        const std::size_t index = colexSlot(j, k);
        bytes[index / 8] |= static_cast<std::uint8_t>(1u << (7 - index % 8));
      }
    }
  }
  return bytes;
}

// Branch-and-bound lex-min search over vertex placements. Position k
// contributes a k-bit adjacency pattern against the placed prefix; numeric
// comparison of patterns equals lexicographic comparison of the revealed
// encoding bits. Two prunes: (a) a candidate whose pattern exceeds the
// incumbent's pattern at this depth cannot start a smaller completion, and
// (b) candidates in one orbit of the prefix-point-stabilizer (under the
// known automorphisms) yield identical subtree encodings, so one
// representative suffices. Equal-encoding leaves yield NEW automorphisms,
// which sharpen (b) as the search proceeds.
class CanonicalSearcher {
 public:
  CanonicalSearcher(const Graph& g, std::vector<Permutation> gens)
      : g_(g), n_(g.numVertices()), gens_(std::move(gens)) {
    const std::size_t slots = n_ * (n_ - 1) / 2;
    cur_.assign((slots + 7) / 8, 0);
    placed_.assign(n_, 0);
    used_.assign(n_, false);
    candsAt_.resize(n_ + 1);
    ufAt_.resize(n_ + 1);
    seenAt_.resize(n_ + 1);
  }

  std::vector<std::uint8_t> run() {
    if (n_ == 0) return {};
    dfs(0, /*equal=*/false);
    return best_;
  }

 private:
  std::uint64_t patternOf(Vertex c, std::size_t k) const {
    std::uint64_t pattern = 0;
    const util::DynBitset& row = g_.row(c);
    for (std::size_t j = 0; j < k; ++j) {
      pattern |= static_cast<std::uint64_t>(row.test(placed_[j])) << (k - 1 - j);
    }
    return pattern;
  }

  std::uint64_t bestPatternAt(std::size_t k) const {
    std::uint64_t pattern = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t index = colexSlot(j, k);
      pattern = (pattern << 1) |
                ((best_[index / 8] >> (7 - index % 8)) & 1u);
    }
    return pattern;
  }

  void writeCur(std::size_t k, std::uint64_t pattern) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t index = colexSlot(j, k);
      const auto mask = static_cast<std::uint8_t>(1u << (7 - index % 8));
      if ((pattern >> (k - 1 - j)) & 1u) {
        cur_[index / 8] |= mask;
      } else {
        cur_[index / 8] &= static_cast<std::uint8_t>(~mask);
      }
    }
  }

  // Union-find over vertices under the generators that fix the placed
  // prefix pointwise; rebuilt per node (gens_ grows during the search).
  void buildOrbits(std::size_t k) {
    std::vector<Vertex>& uf = ufAt_[k];
    uf.resize(n_);
    for (Vertex v = 0; v < n_; ++v) uf[v] = v;
    auto find = [&](Vertex v) {
      while (uf[v] != v) {
        uf[v] = uf[uf[v]];
        v = uf[v];
      }
      return v;
    };
    for (const Permutation& gamma : gens_) {
      bool fixesPrefix = true;
      for (std::size_t j = 0; j < k; ++j) {
        if (gamma[placed_[j]] != placed_[j]) {
          fixesPrefix = false;
          break;
        }
      }
      if (!fixesPrefix) continue;
      for (Vertex v = 0; v < n_; ++v) {
        const Vertex a = find(v);
        const Vertex b = find(gamma[v]);
        if (a != b) uf[a] = b;
      }
    }
  }

  Vertex orbitOf(std::size_t k, Vertex v) {
    std::vector<Vertex>& uf = ufAt_[k];
    while (uf[v] != v) {
      uf[v] = uf[uf[v]];
      v = uf[v];
    }
    return v;
  }

  // Returns true if best_ was replaced somewhere in this subtree.
  bool dfs(std::size_t k, bool equal) {
    if (k == n_) {
      if (!haveBest_ || cur_ < best_) {
        best_ = cur_;
        bestPerm_.assign(placed_.begin(), placed_.end());
        haveBest_ = true;
        return true;
      }
      if (cur_ == best_) {
        // Two placements with identical encodings: the relabeling taking one
        // to the other is an automorphism (encoding equality is the proof).
        Permutation gamma(n_);
        for (std::size_t i = 0; i < n_; ++i) gamma[bestPerm_[i]] = placed_[i];
        if (!isIdentity(gamma)) gens_.push_back(std::move(gamma));
      }
      return false;
    }

    auto& cands = candsAt_[k];
    cands.clear();
    for (Vertex c = 0; c < n_; ++c) {
      if (!used_[c]) cands.emplace_back(patternOf(c, k), c);
    }
    std::sort(cands.begin(), cands.end());
    buildOrbits(k);
    auto& seenOrbits = seenAt_[k];
    seenOrbits.clear();

    bool replaced = false;
    for (const auto& [pattern, c] : cands) {
      const Vertex rep = orbitOf(k, c);
      bool duplicate = false;
      for (const auto& [seenPattern, seenRep] : seenOrbits) {
        if (seenRep == rep) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seenOrbits.emplace_back(pattern, rep);

      bool childEqual = false;
      if (haveBest_ && equal) {
        const std::uint64_t incumbent = bestPatternAt(k);
        if (pattern > incumbent) break;  // Sorted: everything after is larger too.
        childEqual = pattern == incumbent;
      }
      placed_[k] = c;
      used_[c] = true;
      writeCur(k, pattern);
      if (dfs(k + 1, childEqual)) {
        replaced = true;
        equal = true;  // The new incumbent extends the current prefix.
      }
      used_[c] = false;
    }
    return replaced;
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<Permutation> gens_;
  std::vector<std::uint8_t> cur_;
  std::vector<std::uint8_t> best_;
  std::vector<Vertex> placed_;
  std::vector<Vertex> bestPerm_;
  std::vector<bool> used_;
  bool haveBest_ = false;
  std::vector<std::vector<std::pair<std::uint64_t, Vertex>>> candsAt_;
  std::vector<std::vector<Vertex>> ufAt_;
  std::vector<std::vector<std::pair<std::uint64_t, Vertex>>> seenAt_;
};

struct CanonicalCacheEntry {
  std::mutex lock;
  std::condition_variable ready;
  bool done = false;
  std::vector<std::uint8_t> value;
};

struct CanonicalCacheState {
  std::mutex tableLock;
  std::map<std::string, std::shared_ptr<CanonicalCacheEntry>> table;
  std::atomic<std::size_t> searches{0};
};

CanonicalCacheState& canonicalCacheState() {
  static CanonicalCacheState state;
  return state;
}

std::string cacheKey(const Graph& g) {
  const util::DynBitset bits = g.upperTriangleBits();
  std::string key;
  key.reserve(1 + bits.wordCount() * 8);
  key.push_back(static_cast<char>(g.numVertices()));
  const std::uint64_t* words = bits.words();
  for (std::size_t i = 0; i < bits.wordCount(); ++i) {
    for (std::size_t b = 0; b < 8; ++b) {
      key.push_back(static_cast<char>((words[i] >> (8 * b)) & 0xFF));
    }
  }
  return key;
}

}  // namespace

std::vector<std::uint8_t> canonicalForm(const Graph& g) {
  if (g.numVertices() > 64) {
    throw std::invalid_argument("canonicalForm: limited to n <= 64");
  }
  IrSolver solver;
  CanonicalSearcher searcher(g, solver.automorphismGenerators(g));
  return searcher.run();
}

std::vector<std::uint8_t> bruteForceCanonicalForm(const Graph& g) {
  const std::size_t n = g.numVertices();
  if (n > 8) {
    throw std::invalid_argument("bruteForceCanonicalForm: brute force limited to n <= 8");
  }
  Permutation perm = identityPermutation(n);
  std::vector<std::uint8_t> best = encodeUnder(g, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::vector<std::uint8_t> candidate = encodeUnder(g, perm);
    // Element-wise comparison (same length by construction).
    for (std::size_t i = 0; i < best.size(); ++i) {
      if (candidate[i] != best[i]) {
        if (candidate[i] < best[i]) best = std::move(candidate);
        break;
      }
    }
  }
  return best;
}

std::vector<std::uint8_t> cachedCanonicalForm(const Graph& g) {
  CanonicalCacheState& state = canonicalCacheState();

  std::shared_ptr<CanonicalCacheEntry> entry;
  bool firstUser = false;
  {
    std::lock_guard<std::mutex> guard(state.tableLock);
    auto [it, inserted] = state.table.try_emplace(cacheKey(g), nullptr);
    if (inserted) {
      it->second = std::make_shared<CanonicalCacheEntry>();
      firstUser = true;
    }
    entry = it->second;
  }

  if (firstUser) {
    // Single flight: this thread performs the one search for the graph.
    std::vector<std::uint8_t> form = canonicalForm(g);
    state.searches.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(entry->lock);
    entry->value = std::move(form);
    entry->done = true;
    entry->ready.notify_all();
    return entry->value;
  }

  std::unique_lock<std::mutex> guard(entry->lock);
  entry->ready.wait(guard, [&] { return entry->done; });
  return entry->value;
}

std::size_t canonicalFormCacheSearches() {
  return canonicalCacheState().searches.load(std::memory_order_relaxed);
}

void canonicalFormCacheResetForTests() {
  CanonicalCacheState& state = canonicalCacheState();
  std::lock_guard<std::mutex> guard(state.tableLock);
  state.table.clear();
}

bool isomorphicByCanonicalForm(const Graph& g0, const Graph& g1) {
  if (g0.numVertices() != g1.numVertices()) return false;
  if (g0.numEdges() != g1.numEdges()) return false;
  return cachedCanonicalForm(g0) == cachedCanonicalForm(g1);
}

std::uint64_t countIsoClassesByCanonicalForm(std::size_t n) {
  if (n < 1 || n > 7) {
    throw std::invalid_argument("countIsoClassesByCanonicalForm: 1 <= n <= 7");
  }
  const std::size_t slots = n * (n - 1) / 2;
  std::unordered_set<std::string> forms;
  for (std::uint64_t code = 0; code < (1ull << slots); ++code) {
    std::vector<std::uint8_t> form = canonicalForm(Graph::fromUpperTriangleCode(n, code));
    forms.emplace(form.begin(), form.end());
  }
  return forms.size();
}

}  // namespace dip::graph
