// A catalog of classic named graphs with well-known automorphism groups —
// ground-truth instances for the search engine and showpiece inputs for
// the protocols (the Petersen graph is highly symmetric; the Frucht graph
// is the textbook rigid cubic graph).
#pragma once

#include "graph/graph.hpp"

namespace dip::graph {

// The Petersen graph: 10 vertices, 3-regular, |Aut| = 120.
Graph petersenGraph();

// The Frucht graph: 12 vertices, 3-regular, trivial automorphism group —
// the classic asymmetric cubic graph. Built from its LCF notation
// [-5,-2,-4,2,5,-2,2,5,-2,-5,4,2].
Graph fruchtGraph();

// The Heawood graph: 14 vertices, 3-regular, |Aut| = 336. LCF [5,-5]^7.
Graph heawoodGraph();

// Complete bipartite K_{a,b}: |Aut| = a! b! (2 a! b! when a = b).
Graph completeBipartite(std::size_t a, std::size_t b);

// The d-dimensional hypercube Q_d: 2^d vertices, |Aut| = 2^d * d!.
Graph hypercubeGraph(unsigned dimension);

// A graph from LCF notation: Hamiltonian cycle on n vertices plus chords
// i -- (i + shifts[i mod shifts.size()]) mod n.
Graph fromLcfNotation(std::size_t n, const std::vector<int>& shifts);

}  // namespace dip::graph
