// Graph isomorphism and automorphism search.
//
// The prover (Merlin) in the paper is computationally unbounded: the honest
// prover for Protocol 1/2 must FIND a non-trivial automorphism, and the
// honest Goldwasser-Sipser prover must KNOW whether two graphs are
// isomorphic. The public entry points below delegate to the
// individualization-refinement engine in graph/ir.hpp; the original
// 1-WL-plus-backtracking searcher is kept (as the *Backtracking functions)
// as an independently-implemented oracle for differential testing.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dip::graph {

// Stable color classes from iterated 1-WL refinement, as small integers.
// Vertices with different colors cannot be mapped to each other by any
// isomorphism. Colors are canonical across graphs of the same size.
std::vector<std::uint32_t> refinementColors(const Graph& g);

// An isomorphism g0 -> g1, or nullopt if none exists.
std::optional<Permutation> findIsomorphism(const Graph& g0, const Graph& g1);

// A non-trivial (non-identity) automorphism of g, or nullopt iff g is rigid.
std::optional<Permutation> findNontrivialAutomorphism(const Graph& g);

// True iff g has no non-trivial automorphism (g is "asymmetric"/rigid).
bool isRigid(const Graph& g);

bool areIsomorphic(const Graph& g0, const Graph& g1);

// Number of automorphisms of g, capped at `cap` (search stops once the
// count reaches the cap). Exhaustive; intended for small graphs.
std::uint64_t countAutomorphisms(const Graph& g, std::uint64_t cap = UINT64_MAX);

// The full automorphism group of g (identity included), up to `cap`
// elements. The general GNI protocol's honest prover enumerates
// S = {(sigma(G_b), alpha)} through this group. Intended for small graphs /
// small groups.
std::vector<Permutation> allAutomorphisms(const Graph& g, std::size_t cap = 1u << 20);

// Reference implementations: the original 1-WL + most-constrained-variable
// backtracking searcher, independent of the IR engine. Slower; used as
// differential-test oracles.
std::optional<Permutation> findIsomorphismBacktracking(const Graph& g0, const Graph& g1);
std::uint64_t countAutomorphismsBacktracking(const Graph& g, std::uint64_t cap = UINT64_MAX);

}  // namespace dip::graph
