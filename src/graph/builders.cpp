#include "graph/builders.hpp"

#include <stdexcept>
#include <utility>

namespace dip::graph {

DumbbellLayout dumbbellLayout(std::size_t sideSize) {
  DumbbellLayout layout;
  layout.sideSize = sideSize;
  layout.vA = 0;
  layout.vB = static_cast<Vertex>(sideSize);
  layout.xA = static_cast<Vertex>(2 * sideSize);
  layout.xB = static_cast<Vertex>(2 * sideSize + 1);
  return layout;
}

Graph dumbbell(const Graph& fA, const Graph& fB) {
  if (fA.numVertices() != fB.numVertices()) {
    throw std::invalid_argument("dumbbell: side sizes differ");
  }
  const std::size_t k = fA.numVertices();
  DumbbellLayout layout = dumbbellLayout(k);
  Graph g(2 * k + 2);
  for (Vertex v = 0; v < k; ++v) {
    fA.row(v).forEachSet([&](std::size_t u) {
      if (u > v) g.addEdge(v, static_cast<Vertex>(u));
    });
    fB.row(v).forEachSet([&](std::size_t u) {
      if (u > v) g.addEdge(static_cast<Vertex>(v + k), static_cast<Vertex>(u + k));
    });
  }
  g.addEdge(layout.vA, layout.xA);
  g.addEdge(layout.xA, layout.xB);
  g.addEdge(layout.xB, layout.vB);
  return g;
}

DSymLayout dsymLayout(std::size_t sideSize, std::size_t pathRadius) {
  DSymLayout layout;
  layout.sideSize = sideSize;
  layout.pathRadius = pathRadius;
  layout.numVertices = 2 * sideSize + 2 * pathRadius + 1;
  return layout;
}

Graph dsymInstance(const Graph& f, std::size_t pathRadius) {
  return dsymNoInstance(f, f, pathRadius);
}

Graph dsymNoInstance(const Graph& f, const Graph& fOther, std::size_t pathRadius) {
  if (f.numVertices() != fOther.numVertices()) {
    throw std::invalid_argument("dsym: side sizes differ");
  }
  const std::size_t n = f.numVertices();
  if (n < 1) throw std::invalid_argument("dsym: empty side");
  DSymLayout layout = dsymLayout(n, pathRadius);
  Graph g(layout.numVertices);
  for (Vertex v = 0; v < n; ++v) {
    f.row(v).forEachSet([&](std::size_t u) {
      if (u > v) g.addEdge(v, static_cast<Vertex>(u));
    });
    fOther.row(v).forEachSet([&](std::size_t u) {
      if (u > v) g.addEdge(static_cast<Vertex>(v + n), static_cast<Vertex>(u + n));
    });
  }
  // The path 0 - (2n) - (2n+1) - ... - (2n+2r) - n.
  Vertex firstPath = static_cast<Vertex>(2 * n);
  Vertex lastPath = static_cast<Vertex>(2 * n + 2 * pathRadius);
  g.addEdge(0, firstPath);
  for (Vertex v = firstPath; v < lastPath; ++v) g.addEdge(v, v + 1);
  g.addEdge(lastPath, static_cast<Vertex>(n));
  return g;
}

Permutation dsymSigma(const DSymLayout& layout) {
  const std::size_t n = layout.sideSize;
  const std::size_t r = layout.pathRadius;
  Permutation sigma(layout.numVertices);
  for (std::size_t x = 0; x < layout.numVertices; ++x) {
    if (x < n) {
      sigma[x] = static_cast<Vertex>(x + n);
    } else if (x < 2 * n) {
      sigma[x] = static_cast<Vertex>(x - n);
    } else {
      // Path vertices 2n .. 2n+2r reverse: 2n + i -> 2n + 2r - i.
      std::size_t i = x - 2 * n;
      sigma[x] = static_cast<Vertex>(2 * n + (2 * r - i));
    }
  }
  return sigma;
}

bool dsymLocalStructureOk(const Graph& g, const DSymLayout& layout, Vertex v) {
  const std::size_t n = layout.sideSize;
  const std::size_t r = layout.pathRadius;
  if (g.numVertices() != layout.numVertices) return false;
  const Vertex firstPath = static_cast<Vertex>(2 * n);
  const Vertex lastPath = static_cast<Vertex>(2 * n + 2 * r);

  auto isPathNeighbor = [&](Vertex a, Vertex b) {
    // Is {a, b} one of the path edges 0-2n, 2n-(2n+1), ..., (2n+2r)-n ?
    if (a > b) std::swap(a, b);
    if (a == 0 && b == firstPath) return true;
    if (a == static_cast<Vertex>(n) && b == lastPath) return true;
    return a >= firstPath && b == a + 1 && b <= lastPath;
  };

  bool ok = true;
  g.row(v).forEachSet([&](std::size_t uRaw) {
    Vertex u = static_cast<Vertex>(uRaw);
    bool sameSideA = v < n && u < n;
    bool sameSideB = v >= n && v < 2 * n && u >= static_cast<Vertex>(n) &&
                     u < static_cast<Vertex>(2 * n);
    if (!(sameSideA || sameSideB || isPathNeighbor(v, u))) ok = false;
  });

  // Path vertices must have both their path edges; endpoints 0 and n must
  // touch the path.
  if (v >= firstPath && v <= lastPath) {
    Vertex prev = (v == firstPath) ? 0 : v - 1;
    Vertex next = (v == lastPath) ? static_cast<Vertex>(n) : v + 1;
    if (!g.hasEdge(v, prev) || !g.hasEdge(v, next)) ok = false;
  }
  if (v == 0 && !g.hasEdge(v, firstPath)) ok = false;
  if (v == static_cast<Vertex>(n) && !g.hasEdge(v, lastPath)) ok = false;
  return ok;
}

bool isDSymInstance(const Graph& g, const DSymLayout& layout) {
  if (g.numVertices() != layout.numVertices) return false;
  for (Vertex v = 0; v < layout.numVertices; ++v) {
    if (!dsymLocalStructureOk(g, layout, v)) return false;
  }
  return isAutomorphism(g, dsymSigma(layout));
}

}  // namespace dip::graph
