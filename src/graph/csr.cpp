#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bitio.hpp"

namespace dip::graph {
namespace {

// Gap width for one block: enough bits for the largest (gap - 1) value.
// Single-entry blocks carry no gaps; width 1 keeps the header canonical.
unsigned blockGapWidth(const Vertex* neighbors, std::size_t len) {
  Vertex maxGap = 0;
  for (std::size_t i = 1; i < len; ++i) {
    maxGap = std::max(maxGap, static_cast<Vertex>(neighbors[i] - neighbors[i - 1] - 1));
  }
  unsigned width = 1;
  while ((maxGap >> width) != 0) ++width;
  return width;
}

}  // namespace

void CsrGraph::appendBits(std::uint64_t value, unsigned width) {
  const std::uint64_t word = blobBits_ >> 6;
  const unsigned shift = static_cast<unsigned>(blobBits_ & 63);
  while (blob_.size() <= word + 1) blob_.push_back(0);
  blob_[word] |= value << shift;
  if (shift + width > 64) blob_[word + 1] |= value >> (64 - shift);
  blobBits_ += width;
}

void CsrGraph::beginEncoding(std::size_t numVertices) {
  n_ = numVertices;
  numEdges_ = 0;
  idBits_ = util::bitsFor(numVertices);
  blobBits_ = 0;
  degrees_.assign(n_, 0);
  offsets_.assign(n_, 0);
  blob_.assign(1, 0);
}

void CsrGraph::encodeVertex(Vertex v, const Vertex* neighbors, std::size_t count) {
  offsets_[v] = blobBits_;
  degrees_[v] = static_cast<std::uint32_t>(count);
  for (std::size_t done = 0; done < count; done += kBlockCap) {
    const std::size_t len = std::min(kBlockCap, count - done);
    const Vertex* block = neighbors + done;
    const unsigned width = blockGapWidth(block, len);
    appendBits(width - 1, 5);
    appendBits(block[0], idBits_);
    for (std::size_t i = 1; i < len; ++i) {
      appendBits(static_cast<std::uint64_t>(block[i] - block[i - 1] - 1), width);
    }
  }
}

void CsrGraph::finishEncoding() {
  // Keep one zero word past the payload so readBits' spill word always
  // exists; trim anything beyond that.
  blob_.resize((blobBits_ >> 6) + 2, 0);
  std::uint64_t total = 0;
  for (Vertex v = 0; v < n_; ++v) total += degrees_[v];
  numEdges_ = static_cast<std::size_t>(total / 2);
}

CsrGraph CsrGraph::fromGraph(const Graph& g) {
  CsrGraph csr;
  csr.beginEncoding(g.numVertices());
  std::vector<Vertex> scratch;
  for (Vertex v = 0; v < csr.n_; ++v) {
    scratch.clear();
    g.row(v).forEachSet([&](std::size_t u) { scratch.push_back(static_cast<Vertex>(u)); });
    csr.encodeVertex(v, scratch.data(), scratch.size());
  }
  csr.finishEncoding();
  return csr;
}

Graph CsrGraph::toGraph() const {
  Graph g(n_);
  forEachEdge([&](Vertex u, Vertex v) { g.addEdge(u, v); });
  return g;
}

CsrGraph CsrGraph::fromEdges(std::size_t numVertices,
                             const std::vector<std::pair<Vertex, Vertex>>& edges) {
  std::vector<std::pair<Vertex, Vertex>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v) throw std::invalid_argument("CsrGraph::fromEdges: self-loop");
    if (u >= numVertices || v >= numVertices) {
      throw std::out_of_range("CsrGraph::fromEdges: vertex out of range");
    }
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()), directed.end());

  CsrGraph csr;
  csr.beginEncoding(numVertices);
  std::vector<Vertex> scratch;
  std::size_t i = 0;
  for (Vertex v = 0; v < csr.n_; ++v) {
    scratch.clear();
    while (i < directed.size() && directed[i].first == v) {
      scratch.push_back(directed[i].second);
      ++i;
    }
    csr.encodeVertex(v, scratch.data(), scratch.size());
  }
  csr.finishEncoding();
  return csr;
}

std::size_t CsrGraph::maxDegree() const {
  std::uint32_t best = 0;
  for (std::uint32_t d : degrees_) best = std::max(best, d);
  return best;
}

bool CsrGraph::hasEdge(Vertex u, Vertex v) const {
  if (u == v) return false;
  // Scan the lower-degree endpoint's stream.
  if (degrees_[v] < degrees_[u]) std::swap(u, v);
  bool found = false;
  forEachNeighbor(u, [&](Vertex w) { found = found || w == v; });
  return found;
}

bool CsrGraph::isConnected() const {
  if (n_ <= 1) return true;
  std::vector<bool> seen(n_, false);
  std::vector<Vertex> queue;
  queue.reserve(n_);
  queue.push_back(0);
  seen[0] = true;
  std::size_t head = 0;
  while (head < queue.size()) {
    const Vertex v = queue[head++];
    forEachNeighbor(v, [&](Vertex u) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    });
  }
  return queue.size() == n_;
}

std::size_t CsrGraph::memoryBytes() const {
  return blob_.size() * sizeof(std::uint64_t) +
         degrees_.size() * sizeof(std::uint32_t) +
         offsets_.size() * sizeof(std::uint64_t) + sizeof(CsrGraph);
}

double CsrGraph::bitsPerEdge() const {
  if (numEdges_ == 0) return 0.0;
  return static_cast<double>(blobBits_) / static_cast<double>(numEdges_);
}

}  // namespace dip::graph
