#include "graph/generators.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/isomorphism.hpp"

namespace dip::graph {

Graph pathGraph(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  return g;
}

Graph cycleGraph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycleGraph: need n >= 3");
  Graph g = pathGraph(n);
  g.addEdge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph completeGraph(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.addEdge(u, v);
  }
  return g;
}

Graph starGraph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("starGraph: need n >= 2");
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.addEdge(0, v);
  return g;
}

Graph gridGraph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.addEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph erdosRenyi(std::size_t n, double edgeProbability, util::Rng& rng) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.nextChance(edgeProbability)) g.addEdge(u, v);
    }
  }
  return g;
}

Graph randomTree(std::size_t n, util::Rng& rng) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) {
    g.addEdge(v, static_cast<Vertex>(rng.nextBelow(v)));
  }
  return g;
}

Graph randomConnected(std::size_t n, std::size_t extraEdges, util::Rng& rng) {
  Graph g = randomTree(n, rng);
  std::size_t maxEdges = n * (n - 1) / 2;
  std::size_t budget = std::min(extraEdges, maxEdges - g.numEdges());
  std::size_t guard = 0;
  while (budget > 0 && guard < 100 * extraEdges + 1000) {
    ++guard;
    Vertex u = static_cast<Vertex>(rng.nextBelow(n));
    Vertex v = static_cast<Vertex>(rng.nextBelow(n));
    if (u == v || g.hasEdge(u, v)) continue;
    g.addEdge(u, v);
    --budget;
  }
  return g;
}

Graph randomRigidConnected(std::size_t n, util::Rng& rng) {
  if (n < 6) {
    throw std::invalid_argument(
        "randomRigidConnected: no connected rigid graph exists with n < 6");
  }
  // Almost every G(n, 1/2) graph is rigid and connected; a handful of tries
  // suffices even at n = 6.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Graph g = erdosRenyi(n, 0.5, rng);
    if (g.isConnected() && isRigid(g)) return g;
  }
  throw std::runtime_error("randomRigidConnected: attempt budget exhausted");
}

Graph randomSymmetricConnected(std::size_t n, util::Rng& rng) {
  if (n < 2 || n % 2 != 0) {
    throw std::invalid_argument("randomSymmetricConnected: need even n >= 2");
  }
  std::size_t half = n / 2;
  Graph base = half >= 2 ? randomConnected(half, half / 2, rng) : Graph(1);
  // Prism construction base x K2: vertices (v, layer), layer in {0, 1};
  // swapping layers is a non-trivial automorphism.
  Graph g(n);
  for (Vertex v = 0; v < half; ++v) {
    g.addEdge(v, static_cast<Vertex>(v + half));  // Rung.
    base.row(v).forEachSet([&](std::size_t u) {
      if (u > v) {
        g.addEdge(v, static_cast<Vertex>(u));
        g.addEdge(static_cast<Vertex>(v + half), static_cast<Vertex>(u + half));
      }
    });
  }
  return g;
}

Permutation randomPermutation(std::size_t n, util::Rng& rng) {
  Permutation perm = identityPermutation(n);
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = rng.nextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Graph randomIsomorphicCopy(const Graph& g, util::Rng& rng) {
  return g.relabeled(randomPermutation(g.numVertices(), rng));
}

CsrGraph csrPathGraph(std::size_t n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return CsrGraph::fromEdges(n, edges);
}

CsrGraph csrStarGraph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("csrStarGraph: need n >= 2");
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(n - 1);
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return CsrGraph::fromEdges(n, edges);
}

CsrGraph csrGridGraph(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(2 * rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return CsrGraph::fromEdges(rows * cols, edges);
}

CsrGraph csrRandomTree(std::size_t n, util::Rng& rng) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<Vertex>(rng.nextBelow(v)));
  }
  return CsrGraph::fromEdges(n, edges);
}

CsrGraph csrRandomBoundedDegree(std::size_t n, std::size_t maxDegree,
                                std::size_t extraEdges, util::Rng& rng) {
  if (maxDegree < 2) {
    throw std::invalid_argument("csrRandomBoundedDegree: need maxDegree >= 2");
  }
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve((n > 0 ? n - 1 : 0) + extraEdges);
  std::vector<std::uint32_t> degree(n, 0);
  // Degree-capped random recursive tree. A non-full parent always exists:
  // the tree on v vertices has total degree 2(v - 1) < maxDegree * v for
  // maxDegree >= 2.
  for (Vertex v = 1; v < n; ++v) {
    Vertex parent = static_cast<Vertex>(rng.nextBelow(v));
    while (degree[parent] >= maxDegree) parent = (parent + 1) % v;
    edges.emplace_back(v, parent);
    ++degree[v];
    ++degree[parent];
  }
  if (extraEdges > 0 && n >= 2) {
    // Membership set over edge keys (min, max) packed into one word; O(m)
    // memory — never the dense matrix.
    std::unordered_set<std::uint64_t> present;
    present.reserve(edges.size() + extraEdges);
    auto key = [](Vertex a, Vertex b) {
      if (a > b) std::swap(a, b);
      return (static_cast<std::uint64_t>(a) << 32) | b;
    };
    for (const auto& [u, v] : edges) present.insert(key(u, v));
    std::size_t budget = extraEdges;
    std::size_t guard = 0;
    const std::size_t guardLimit = 100 * extraEdges + 1000;
    while (budget > 0 && guard < guardLimit) {
      ++guard;
      Vertex u = static_cast<Vertex>(rng.nextBelow(n));
      Vertex v = static_cast<Vertex>(rng.nextBelow(n));
      if (u == v || degree[u] >= maxDegree || degree[v] >= maxDegree) continue;
      if (!present.insert(key(u, v)).second) continue;
      edges.emplace_back(u, v);
      ++degree[u];
      ++degree[v];
      --budget;
    }
  }
  return CsrGraph::fromEdges(n, edges);
}

CsrGraph csrDsymOverTree(std::size_t sideSize, std::size_t pathRadius,
                         util::Rng& rng) {
  if (sideSize < 1) throw std::invalid_argument("csrDsymOverTree: empty side");
  const std::size_t n = sideSize;
  const std::size_t total = 2 * n + 2 * pathRadius + 1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(2 * (n - 1) + 2 * pathRadius + 2);
  for (Vertex v = 1; v < n; ++v) {
    const Vertex parent = static_cast<Vertex>(rng.nextBelow(v));
    edges.emplace_back(v, parent);
    edges.emplace_back(static_cast<Vertex>(v + n), static_cast<Vertex>(parent + n));
  }
  // The path 0 - (2n) - (2n+1) - ... - (2n+2r) - n.
  const Vertex firstPath = static_cast<Vertex>(2 * n);
  const Vertex lastPath = static_cast<Vertex>(2 * n + 2 * pathRadius);
  edges.emplace_back(0, firstPath);
  for (Vertex v = firstPath; v < lastPath; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(lastPath, static_cast<Vertex>(n));
  return CsrGraph::fromEdges(total, edges);
}

}  // namespace dip::graph
