// Undirected simple graphs on a fixed vertex set {0, ..., n-1}.
//
// This is the network substrate of the paper: nodes are vertices, and the
// closed neighborhood N_G(v) (which, per the paper's convention in Section 2,
// includes v itself) is both a node's communication range and its row of the
// self-looped adjacency matrix used by the hashing protocols.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "util/bitset.hpp"

namespace dip::graph {

using Vertex = std::uint32_t;
using Permutation = std::vector<Vertex>;  // perm[v] = image of v.

class Graph {
 public:
  explicit Graph(std::size_t numVertices);

  static Graph fromEdges(std::size_t numVertices,
                         std::initializer_list<std::pair<Vertex, Vertex>> edges);

  std::size_t numVertices() const { return n_; }
  std::size_t numEdges() const { return numEdges_; }

  // Adds the undirected edge {u, v}; no-op on duplicates; rejects loops.
  void addEdge(Vertex u, Vertex v);
  bool hasEdge(Vertex u, Vertex v) const;

  std::size_t degree(Vertex v) const { return rows_[v].count(); }

  // Open neighborhood as a characteristic vector (v excluded).
  const util::DynBitset& row(Vertex v) const { return rows_[v]; }
  // Closed neighborhood N_G(v): v's row with the self-loop bit set (the
  // paper's N(v), "with self-loops for all vertices").
  util::DynBitset closedRow(Vertex v) const;
  // Open neighbors as a sorted list.
  std::vector<Vertex> neighbors(Vertex v) const;
  // Closed neighbors (v included), sorted.
  std::vector<Vertex> closedNeighbors(Vertex v) const;

  // Allocation-free neighborhood iteration, ascending. These mirror
  // CsrGraph's visitors so traversal code (spanning trees, lower-bound
  // baselines, dry-run accounting) can be templated over either
  // representation; hot loops must use these instead of neighbors() /
  // closedNeighbors(), which build a fresh vector per call.
  template <typename Fn>
  void forEachNeighbor(Vertex v, Fn&& fn) const {
    rows_[v].forEachSet([&](std::size_t u) { fn(static_cast<Vertex>(u)); });
  }

  // Closed neighborhood (v included), ascending.
  template <typename Fn>
  void forEachClosedNeighbor(Vertex v, Fn&& fn) const {
    bool emitted = false;
    rows_[v].forEachSet([&](std::size_t bit) {
      const Vertex u = static_cast<Vertex>(bit);
      if (!emitted && u > v) {
        emitted = true;
        fn(v);
      }
      fn(u);
    });
    if (!emitted) fn(v);
  }

  // Visits every edge once as (u, v) with u < v, ascending by (u, v).
  template <typename Fn>
  void forEachEdge(Fn&& fn) const {
    for (Vertex u = 0; u < n_; ++u) {
      rows_[u].forEachSet([&](std::size_t bit) {
        if (bit > u) fn(u, static_cast<Vertex>(bit));
      });
    }
  }

  bool isConnected() const;

  // The graph with vertex v renamed to perm[v] (sigma(G) in the paper).
  Graph relabeled(const Permutation& perm) const;

  // Image of a vertex subset under a function rho: V -> V, as a
  // characteristic vector: rho(S)_v = 1 iff exists u in S with rho(u) = v.
  static util::DynBitset imageOf(const util::DynBitset& subset,
                                 const Permutation& rho);

  bool operator==(const Graph& other) const;

  // Upper-triangle adjacency bits (row-major, u < v), the canonical n(n-1)/2
  // bit description of the graph; used for exhaustive enumeration.
  util::DynBitset upperTriangleBits() const;
  static Graph fromUpperTriangleBits(std::size_t numVertices,
                                     const util::DynBitset& bits);

  // Fast path for exhaustive sweeps: the upper-triangle description packed
  // into a machine word (bit i = the i-th (u, v) pair, row-major, u < v).
  // Requires n(n-1)/2 <= 64, i.e. n <= 11; builds the rows directly without
  // an intermediate DynBitset or edge-by-edge insertion.
  static Graph fromUpperTriangleCode(std::size_t numVertices, std::uint64_t code);

  std::size_t hashValue() const;

 private:
  std::size_t n_ = 0;
  std::size_t numEdges_ = 0;
  std::vector<util::DynBitset> rows_;
};

// True if perm is a bijection on {0, ..., n-1}.
bool isPermutation(const Permutation& perm, std::size_t n);
// True if perm is the identity on {0, ..., n-1}.
bool isIdentity(const Permutation& perm);
// perm composed after first: result[v] = perm[first[v]].
Permutation compose(const Permutation& perm, const Permutation& first);
Permutation inverse(const Permutation& perm);
Permutation identityPermutation(std::size_t n);

// True if rho is an automorphism of g (Definition in Section 2.3: for every
// u, v: {u, v} in E iff {rho(u), rho(v)} in E). Requires rho a permutation.
bool isAutomorphism(const Graph& g, const Permutation& rho);

}  // namespace dip::graph
