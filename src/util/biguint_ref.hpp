// Frozen 32-bit limb reference implementation of BigUInt — the differential
// oracle for the 64-bit production engine in biguint.{hpp,cpp}.
//
// This is the seed implementation verbatim (little-endian 32-bit limbs,
// schoolbook multiply, Knuth Algorithm D division, square-and-multiply
// powMod), renamed so the two engines can be linked side by side. It follows
// the same pattern as graph/findIsomorphismBacktracking: the slow, simple,
// battle-tested code stays compiled and becomes the test oracle that the
// optimized path must match bit for bit (tests/biguint_diff_test.cpp).
//
// Production code must never call this; it exists for tests only.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dip::util {

class BigUIntRef;
struct DivModResultRef;
// Quotient and remainder; throws std::domain_error on division by zero.
DivModResultRef refDivMod(const BigUIntRef& dividend, const BigUIntRef& divisor);

class BigUIntRef {
 public:
  BigUIntRef() = default;
  BigUIntRef(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  static BigUIntRef fromDecimal(std::string_view text);
  static BigUIntRef fromHex(std::string_view text);

  bool isZero() const { return limbs_.empty(); }
  bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  std::size_t bitLength() const;
  bool bit(std::size_t i) const;

  bool fitsU64() const { return limbs_.size() <= 2; }
  std::uint64_t toU64() const;

  std::string toDecimal() const;
  std::string toHex() const;

  std::strong_ordering operator<=>(const BigUIntRef& other) const;
  bool operator==(const BigUIntRef& other) const = default;

  BigUIntRef& operator+=(const BigUIntRef& rhs);
  BigUIntRef& operator-=(const BigUIntRef& rhs);
  BigUIntRef& operator*=(const BigUIntRef& rhs);
  BigUIntRef& operator<<=(std::size_t bits);
  BigUIntRef& operator>>=(std::size_t bits);

  friend BigUIntRef operator+(BigUIntRef lhs, const BigUIntRef& rhs) { return lhs += rhs; }
  friend BigUIntRef operator-(BigUIntRef lhs, const BigUIntRef& rhs) { return lhs -= rhs; }
  friend BigUIntRef operator*(const BigUIntRef& lhs, const BigUIntRef& rhs);
  friend BigUIntRef operator<<(BigUIntRef lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigUIntRef operator>>(BigUIntRef lhs, std::size_t bits) { return lhs >>= bits; }

  std::uint32_t modU32(std::uint32_t modulus) const;

  static BigUIntRef pow(const BigUIntRef& base, std::uint64_t exponent);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }
  static BigUIntRef fromLimbs(std::vector<std::uint32_t> limbs);

 private:
  friend struct DivModResultRef;
  friend DivModResultRef refDivMod(const BigUIntRef& dividend, const BigUIntRef& divisor);

  void normalize();

  std::vector<std::uint32_t> limbs_;
};

struct DivModResultRef {
  BigUIntRef quotient;
  BigUIntRef remainder;
};

inline BigUIntRef operator/(const BigUIntRef& lhs, const BigUIntRef& rhs) {
  return refDivMod(lhs, rhs).quotient;
}
inline BigUIntRef operator%(const BigUIntRef& lhs, const BigUIntRef& rhs) {
  return refDivMod(lhs, rhs).remainder;
}

BigUIntRef refAddMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m);
BigUIntRef refSubMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m);
BigUIntRef refMulMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m);
// Naive square-and-multiply, the powMod oracle.
BigUIntRef refPowMod(const BigUIntRef& base, const BigUIntRef& exponent,
                     const BigUIntRef& m);

}  // namespace dip::util
