#include "util/mathutil.hpp"

#include <cmath>
#include <stdexcept>

namespace dip::util {

unsigned floorLog2(std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("floorLog2: zero");
  return 63u - static_cast<unsigned>(__builtin_clzll(value));
}

unsigned ceilLog2(std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("ceilLog2: zero");
  unsigned floorBits = floorLog2(value);
  return ((value & (value - 1)) == 0) ? floorBits : floorBits + 1;
}

BigUInt factorial(std::uint64_t n) {
  BigUInt result{1};
  for (std::uint64_t i = 2; i <= n; ++i) result *= BigUInt{i};
  return result;
}

WilsonInterval wilson95(std::uint64_t successes, std::uint64_t trials) {
  if (trials == 0) return {};
  const double z = 1.959963984540054;  // 97.5th percentile of N(0, 1).
  const double n = static_cast<double>(trials);
  const double pHat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (pHat + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(pHat * (1.0 - pHat) / n + z2 / (4.0 * n * n));
  WilsonInterval out;
  out.low = std::max(0.0, center - margin);
  out.high = std::min(1.0, center + margin);
  out.pointEstimate = pHat;
  return out;
}

double binomialTailGE(std::uint64_t k, double p, std::uint64_t threshold) {
  if (threshold == 0) return 1.0;
  if (threshold > k) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double logP = std::log(p);
  const double logQ = std::log1p(-p);
  double tail = 0.0;
  for (std::uint64_t i = threshold; i <= k; ++i) {
    double logTerm = std::lgamma(static_cast<double>(k) + 1.0) -
                     std::lgamma(static_cast<double>(i) + 1.0) -
                     std::lgamma(static_cast<double>(k - i) + 1.0) +
                     static_cast<double>(i) * logP + static_cast<double>(k - i) * logQ;
    tail += std::exp(logTerm);
  }
  return std::min(1.0, tail);
}

}  // namespace dip::util
