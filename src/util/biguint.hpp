// Arbitrary-precision unsigned integer arithmetic.
//
// Protocol 2 of the paper (the dAM protocol for Sym, Theorem 1.3) hashes the
// adjacency matrix with a linear hash over Z_p for a prime
// p in [10 * n^(n+2), 100 * n^(n+2)] — thousands of bits for interesting n —
// and the distributed Goldwasser-Sipser protocol for GNI (Theorem 1.5) needs
// a field of size ~ n! * n. BigUInt provides exactly the operations those
// protocols need: comparison, +, -, *, divmod, shifts, bit access, modular
// exponentiation, and textual I/O.
//
// Representation: little-endian vector of 64-bit limbs, always normalized
// (no trailing zero limbs); zero is the empty vector. Products use
// unsigned __int128 double-limbs; -DDIP_BIGUINT_LIMB32 falls back to 32-bit
// limbs with 64-bit intermediates for targets without a 128-bit type.
// Multiplication is schoolbook below kKaratsubaThresholdLimbs and Karatsuba
// above it. The frozen seed implementation lives on as BigUIntRef
// (biguint_ref.hpp), the differential-test oracle for this engine.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dip::util {

class BigUInt;
struct DivModResult;
// Quotient and remainder; throws std::domain_error on division by zero.
DivModResult divMod(const BigUInt& dividend, const BigUInt& divisor);

class BigUInt {
 public:
#if defined(DIP_BIGUINT_LIMB32)
  using Limb = std::uint32_t;
  using DLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;
#else
  using Limb = std::uint64_t;
  __extension__ using DLimb = unsigned __int128;
  static constexpr unsigned kLimbBits = 64;
#endif

  // Operands with at least this many limbs on both sides go through
  // Karatsuba; below it schoolbook wins (tuned on the 1-CPU bench container;
  // boundary behavior is pinned by tests/biguint_diff_test.cpp).
  static constexpr std::size_t kKaratsubaThresholdLimbs = 24;

  BigUInt() = default;
  BigUInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  // Parses a non-empty string of decimal digits. Throws std::invalid_argument
  // on any other input.
  static BigUInt fromDecimal(std::string_view text);
  // Parses a non-empty string of hex digits (no 0x prefix, case-insensitive).
  static BigUInt fromHex(std::string_view text);

  bool isZero() const { return limbs_.empty(); }
  bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  // Number of significant bits; 0 for zero.
  std::size_t bitLength() const;
  // Value of bit i (little-endian); false beyond bitLength().
  bool bit(std::size_t i) const;

  bool fitsU64() const { return limbs_.size() * kLimbBits <= 64; }
  // Requires fitsU64(); throws std::overflow_error otherwise.
  std::uint64_t toU64() const;
  // *this = value, reusing the existing limb storage (no allocation once the
  // capacity exists) — the batch evaluator's out-vectors rewrite in place.
  void assignU64(std::uint64_t value);
  // Approximate conversion (for plotting/scaling); +inf if enormous.
  double toDouble() const;
  // Approximate base-2 logarithm; -inf for zero.
  double log2() const;

  std::string toDecimal() const;
  std::string toHex() const;

  std::strong_ordering operator<=>(const BigUInt& other) const;
  bool operator==(const BigUInt& other) const = default;

  BigUInt& operator+=(const BigUInt& rhs);
  // Requires *this >= rhs; throws std::underflow_error otherwise.
  BigUInt& operator-=(const BigUInt& rhs);
  BigUInt& operator*=(const BigUInt& rhs);
  BigUInt& operator<<=(std::size_t bits);
  BigUInt& operator>>=(std::size_t bits);

  // In-place aliases for the hot paths: after warm-up these reuse the limb
  // vector's capacity, so steady-state Horner chains allocate nothing.
  BigUInt& addInPlace(const BigUInt& rhs) { return *this += rhs; }
  BigUInt& subInPlace(const BigUInt& rhs) { return *this -= rhs; }
  BigUInt& shiftLeftInPlace(std::size_t bits) { return *this <<= bits; }

  friend BigUInt operator+(BigUInt lhs, const BigUInt& rhs) { return lhs += rhs; }
  friend BigUInt operator-(BigUInt lhs, const BigUInt& rhs) { return lhs -= rhs; }
  friend BigUInt operator*(const BigUInt& lhs, const BigUInt& rhs);
  friend BigUInt operator<<(BigUInt lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigUInt operator>>(BigUInt lhs, std::size_t bits) { return lhs >>= bits; }

  // out = lhs * rhs without touching the heap once out and scratch have
  // warmed up to the working size. out must not alias lhs or rhs (falls back
  // to an allocating multiply if it does). scratch is resized as needed and
  // can be shared across calls of any size.
  static void mulInto(const BigUInt& lhs, const BigUInt& rhs, BigUInt& out,
                      std::vector<Limb>& scratch);

  // Fast path: remainder by a non-zero 32-bit modulus.
  std::uint32_t modU32(std::uint32_t modulus) const;
  // Remainder by a non-zero 64-bit modulus (one pass; feeds the small-prime
  // sieve in primes.cpp).
  std::uint64_t modU64(std::uint64_t modulus) const;

  // Raises base to the given (machine-word) exponent; no modulus.
  static BigUInt pow(const BigUInt& base, std::uint64_t exponent);

  // The native limbs, little-endian (for Montgomery/Barrett kernels).
  const std::vector<Limb>& words() const { return limbs_; }
  static BigUInt fromWords(std::vector<Limb> words);

  // Compat: 32-bit little-endian limbs (wire codecs, Rng::nextBigBits keep
  // their exact historical layout and consumption).
  static BigUInt fromLimbs(const std::vector<std::uint32_t>& limbs);

 private:
  friend struct DivModResult;
  friend DivModResult divMod(const BigUInt& dividend, const BigUInt& divisor);

  void normalize();

  std::vector<Limb> limbs_;
};

struct DivModResult {
  BigUInt quotient;
  BigUInt remainder;
};

inline BigUInt operator/(const BigUInt& lhs, const BigUInt& rhs) {
  return divMod(lhs, rhs).quotient;
}
inline BigUInt operator%(const BigUInt& lhs, const BigUInt& rhs) {
  return divMod(lhs, rhs).remainder;
}

// (a + b) mod m. Requires a, b < m.
BigUInt addMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);
// acc = (acc + term) mod m in place. Requires acc, term < m. The in-place
// form reuses acc's limb storage — the protocols' per-node chain folds call
// this thousands of times per trial, so the temporary-free variant matters.
void addModInPlace(BigUInt& acc, const BigUInt& term, const BigUInt& m);
// (a - b) mod m. Requires a, b < m.
BigUInt subMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);
// (a * b) mod m. Requires m != 0. Has a 64-bit fast path when m fits a word.
BigUInt mulMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);
// (base ^ exponent) mod m. Requires m != 0. Dispatches to a word-sized fast
// path, Montgomery (odd m) or Barrett (even m) — see montgomery.hpp.
BigUInt powMod(const BigUInt& base, const BigUInt& exponent, const BigUInt& m);

}  // namespace dip::util
