#include "util/bitio.hpp"

#include <stdexcept>

namespace dip::util {

void BitWriter::pushZeroByte() {
  const std::size_t used = (bitCount_ + 7) / 8;
  if (arena_ == nullptr) {
    heapBytes_.push_back(0);
    return;
  }
  if (used == arenaCapacity_) {
    const std::size_t grown = arenaCapacity_ ? arenaCapacity_ * 2 : 16;
    auto* fresh = arena_->allocateArray<std::uint8_t>(grown);
    std::copy(arenaData_, arenaData_ + used, fresh);
    arenaData_ = fresh;
    arenaCapacity_ = grown;
  }
  arenaData_[used] = 0;
}

void BitWriter::writeBit(bool bit) {
  std::size_t byteIndex = bitCount_ / 8;
  if (bitCount_ % 8 == 0) pushZeroByte();
  if (bit) {
    auto* data = arena_ ? arenaData_ : heapBytes_.data();
    data[byteIndex] |= static_cast<std::uint8_t>(1u << (7 - bitCount_ % 8));
  }
  ++bitCount_;
}

void BitWriter::writeUInt(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter::writeUInt: width > 64");
  if (width < 64 && (value >> width) != 0) {
    throw std::invalid_argument("BitWriter::writeUInt: value does not fit width");
  }
  for (unsigned i = width; i-- > 0;) {
    writeBit((value >> i) & 1u);
  }
}

void BitWriter::writeBig(const BigUInt& value, std::size_t width) {
  if (value.bitLength() > width) {
    throw std::invalid_argument("BitWriter::writeBig: value does not fit width");
  }
  for (std::size_t i = width; i-- > 0;) {
    writeBit(value.bit(i));
  }
}

void BitWriter::writeVarUInt(std::uint64_t value) {
  do {
    std::uint64_t chunk = value & 0x7F;
    value >>= 7;
    writeBit(value != 0);
    writeUInt(chunk, 7);
  } while (value != 0);
}

BitReader::BitReader(std::span<const std::uint8_t> bytes, std::size_t bitCount)
    : bytes_(bytes), bitCount_(bitCount) {
  if (bitCount > bytes.size() * 8) {
    throw std::invalid_argument("BitReader: bit count exceeds buffer");
  }
}

bool BitReader::readBit() {
  if (position_ >= bitCount_) throw std::out_of_range("BitReader: read past end");
  bool bit = (bytes_[position_ / 8] >> (7 - position_ % 8)) & 1u;
  ++position_;
  return bit;
}

std::uint64_t BitReader::readUInt(unsigned width) {
  if (width > 64) throw std::invalid_argument("BitReader::readUInt: width > 64");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(readBit());
  }
  return value;
}

BigUInt BitReader::readBig(std::size_t width) {
  BigUInt value;
  // Assemble 32 bits at a time to avoid quadratic shifting.
  std::size_t fullLimbs = width / 32;
  std::size_t headBits = width % 32;
  std::vector<std::uint32_t> limbs(fullLimbs + (headBits ? 1 : 0), 0);
  if (headBits) {
    limbs[fullLimbs] = static_cast<std::uint32_t>(readUInt(static_cast<unsigned>(headBits)));
  }
  for (std::size_t i = fullLimbs; i-- > 0;) {
    limbs[i] = static_cast<std::uint32_t>(readUInt(32));
  }
  return BigUInt::fromLimbs(std::move(limbs));
}

std::uint64_t BitReader::readVarUInt() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    bool more = readBit();
    std::uint64_t chunk = readUInt(7);
    value |= chunk << shift;
    if (!more) return value;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("BitReader::readVarUInt: overlong");
  }
}

unsigned bitsFor(std::uint64_t count) {
  if (count <= 2) return 1;
  unsigned bits = 0;
  std::uint64_t maxValue = count - 1;
  while (maxValue) {
    ++bits;
    maxValue >>= 1;
  }
  return bits;
}

}  // namespace dip::util
