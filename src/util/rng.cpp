#include "util/rng.hpp"

#include <stdexcept>

namespace dip::util {

namespace {

std::uint64_t splitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitMix64(sm);
}

std::uint64_t Rng::nextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::nextBelow: zero bound");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = -bound % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t value = nextU64();
    if (value >= threshold) return value % bound;
  }
}

std::uint64_t Rng::nextBits(unsigned k) {
  if (k == 0) return 0;
  if (k >= 64) return nextU64();
  return nextU64() >> (64 - k);
}

bool Rng::nextChance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
  return static_cast<double>(nextU64()) * kInv < probability;
}

BigUInt Rng::nextBigBits(std::size_t bits) {
  std::vector<std::uint32_t> limbs((bits + 31) / 32, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    limbs[i] = static_cast<std::uint32_t>(nextU64());
  }
  unsigned topBits = static_cast<unsigned>(bits % 32);
  if (topBits != 0) limbs.back() &= (1u << topBits) - 1u;
  return BigUInt::fromLimbs(std::move(limbs));
}

BigUInt Rng::nextBigBelow(const BigUInt& bound) {
  if (bound.isZero()) throw std::invalid_argument("Rng::nextBigBelow: zero bound");
  std::size_t bits = bound.bitLength();
  for (;;) {
    BigUInt candidate = nextBigBits(bits);
    if (candidate < bound) return candidate;
  }
}

Rng Rng::split(std::uint64_t streamId) {
  // Mix the stream id with fresh output so sibling streams are independent.
  std::uint64_t mixed = nextU64() ^ (streamId * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  return Rng{mixed};
}

Rng Rng::child(std::uint64_t index) const {
  // Fold the full 256-bit state and the counter through splitMix64 so
  // children of distinct parents (or distinct indices) are independent,
  // without touching the parent's state.
  std::uint64_t acc = 0x243F6A8885A308D3ull;  // pi, as an arbitrary salt.
  for (std::uint64_t word : state_) {
    acc ^= word;
    acc = splitMix64(acc);
  }
  acc ^= index;
  return Rng{splitMix64(acc)};
}

}  // namespace dip::util
