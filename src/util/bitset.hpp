// A compact dynamic bitset used for adjacency-matrix rows and neighborhood
// characteristic vectors (the paper's N(v) in {0,1}^V).
//
// Sets of up to 64 bits live in a single inline word — no heap allocation.
// Adjacency rows at the experiment sizes (and every graph in the exhaustive
// censuses) stay inline, which keeps Graph construction and row copies off
// the allocator in the search engine's hot loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dip::util {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t size);

  std::size_t size() const { return size_; }
  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i) { set(i, false); }
  void clearAll();
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  bool operator==(const DynBitset& other) const = default;
  DynBitset& operator^=(const DynBitset& other);
  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);

  bool intersects(const DynBitset& other) const;

  // Invokes fn(i) for each set bit, ascending.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    const std::uint64_t* w = words();
    const std::size_t count = wordCount();
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t word = w[i];
      while (word) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(i * 64 + bit);
        word &= word - 1;
      }
    }
  }

  // Index of the first set bit, or size() if none.
  std::size_t firstSet() const;

  std::size_t hashValue() const;

  // Raw word access (little-endian bit order within each 64-bit word); the
  // search engine packs rows from here.
  std::size_t wordCount() const { return (size_ + 63) / 64; }
  const std::uint64_t* words() const { return small() ? &word0_ : heap_.data(); }

 private:
  bool small() const { return size_ <= 64; }
  std::uint64_t* words() { return small() ? &word0_ : heap_.data(); }

  std::size_t size_ = 0;
  // Inline storage for size_ <= 64; heap_ otherwise (word0_ then stays 0 so
  // the defaulted operator== remains a representation comparison).
  std::uint64_t word0_ = 0;
  std::vector<std::uint64_t> heap_;
};

}  // namespace dip::util

template <>
struct std::hash<dip::util::DynBitset> {
  std::size_t operator()(const dip::util::DynBitset& bs) const {
    return bs.hashValue();
  }
};
