// A compact dynamic bitset used for adjacency-matrix rows and neighborhood
// characteristic vectors (the paper's N(v) in {0,1}^V).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dip::util {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t size);

  std::size_t size() const { return size_; }
  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i) { set(i, false); }
  void clearAll();
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  bool operator==(const DynBitset& other) const = default;
  DynBitset& operator^=(const DynBitset& other);
  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);

  bool intersects(const DynBitset& other) const;

  // Invokes fn(i) for each set bit, ascending.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  // Index of the first set bit, or size() if none.
  std::size_t firstSet() const;

  std::size_t hashValue() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dip::util

template <>
struct std::hash<dip::util::DynBitset> {
  std::size_t operator()(const dip::util::DynBitset& bs) const {
    return bs.hashValue();
  }
};
