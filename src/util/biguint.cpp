#include "util/biguint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/montgomery.hpp"

namespace dip::util {

namespace {

using Limb = BigUInt::Limb;
using DLimb = BigUInt::DLimb;
constexpr unsigned kLimbBits = BigUInt::kLimbBits;
constexpr DLimb kLimbBase = static_cast<DLimb>(1) << kLimbBits;

// Decimal I/O works in the largest power of ten that fits a limb, so each
// Horner/division pass over the limbs handles a whole chunk of digits.
constexpr unsigned kDecChunkDigits = (kLimbBits == 64) ? 19 : 9;

constexpr Limb pow10Limb(unsigned digits) {
  Limb p = 1;
  for (unsigned i = 0; i < digits; ++i) p *= 10;
  return p;
}

constexpr Limb kDecChunkBase = pow10Limb(kDecChunkDigits);

int hexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// dst[0..dstLen) += src[0..srcLen), srcLen <= dstLen; returns the final carry.
Limb addRaw(Limb* dst, std::size_t dstLen, const Limb* src, std::size_t srcLen) {
  Limb carry = 0;
  std::size_t i = 0;
  for (; i < srcLen; ++i) {
    DLimb cur = static_cast<DLimb>(dst[i]) + src[i] + carry;
    dst[i] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> kLimbBits);
  }
  for (; carry && i < dstLen; ++i) {
    DLimb cur = static_cast<DLimb>(dst[i]) + carry;
    dst[i] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> kLimbBits);
  }
  return carry;
}

// dst[0..dstLen) += src[0..srcLen) where the sum is known to fit dstLen limbs.
void addRawAt(Limb* dst, std::size_t dstLen, const Limb* src, std::size_t srcLen) {
  addRaw(dst, dstLen, src, srcLen);
}

// dst[0..dstLen) -= src[0..srcLen); requires dst >= src as numbers.
void subRaw(Limb* dst, std::size_t dstLen, const Limb* src, std::size_t srcLen) {
  Limb borrow = 0;
  std::size_t i = 0;
  for (; i < srcLen; ++i) {
    Limb t1 = dst[i] - src[i];
    Limb b1 = t1 > dst[i];
    Limb t2 = t1 - borrow;
    Limb b2 = t2 > t1;
    dst[i] = t2;
    borrow = b1 | b2;
  }
  for (; borrow && i < dstLen; ++i) {
    Limb t = dst[i] - borrow;
    borrow = t > dst[i];
    dst[i] = t;
  }
}

// out[0..an+bn) = a * b, schoolbook. Overwrites out.
void mulSchoolbookRaw(const Limb* a, std::size_t an, const Limb* b, std::size_t bn,
                      Limb* out) {
  std::fill(out, out + an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    Limb ai = a[i];
    if (ai == 0) continue;
    Limb carry = 0;
    for (std::size_t j = 0; j < bn; ++j) {
      DLimb cur = static_cast<DLimb>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    out[i + bn] = carry;
  }
}

// out[0..2n) = a * b for equal-length operands; scratch must provide
// karatsubaScratchLimbs(n) limbs. Overwrites out.
void karatsubaEqualRaw(const Limb* a, const Limb* b, std::size_t n, Limb* out,
                       Limb* scratch) {
  if (n < BigUInt::kKaratsubaThresholdLimbs) {
    mulSchoolbookRaw(a, n, b, n, out);
    return;
  }
  const std::size_t lo = n / 2;
  const std::size_t hi = n - lo;
  // z0 = a0*b0 and z2 = a1*b1 land in disjoint halves of out.
  karatsubaEqualRaw(a, b, lo, out, scratch);
  karatsubaEqualRaw(a + lo, b + lo, hi, out + 2 * lo, scratch);
  Limb* asum = scratch;
  Limb* bsum = asum + (hi + 1);
  Limb* prod = bsum + (hi + 1);
  Limb* rest = prod + 2 * (hi + 1);
  std::copy(a + lo, a + n, asum);
  asum[hi] = addRaw(asum, hi, a, lo);
  std::copy(b + lo, b + n, bsum);
  bsum[hi] = addRaw(bsum, hi, b, lo);
  karatsubaEqualRaw(asum, bsum, hi + 1, prod, rest);
  // z1 = (a0+a1)(b0+b1) - z0 - z2 = a0*b1 + a1*b0, added at offset lo. Limbs
  // of prod beyond 2n - lo are provably zero (z1 < 2*B^n), so clamping the
  // add length is safe.
  subRaw(prod, 2 * (hi + 1), out, 2 * lo);
  subRaw(prod, 2 * (hi + 1), out + 2 * lo, 2 * hi);
  addRawAt(out + lo, 2 * n - lo, prod, std::min(2 * (hi + 1), 2 * n - lo));
}

std::size_t karatsubaScratchLimbs(std::size_t n) {
  std::size_t total = 0;
  while (n >= BigUInt::kKaratsubaThresholdLimbs) {
    std::size_t hi = n - n / 2;
    total += 4 * (hi + 1);
    n = hi + 1;
  }
  return total;
}

std::size_t mulScratchLimbs(std::size_t an, std::size_t bn) {
  if (an < bn) std::swap(an, bn);
  if (bn < BigUInt::kKaratsubaThresholdLimbs) return 0;
  if (an == bn) return karatsubaScratchLimbs(an);
  std::size_t rec = karatsubaScratchLimbs(bn);
  std::size_t tail = an % bn;
  if (tail != 0) rec = std::max(rec, mulScratchLimbs(bn, tail));
  return 2 * bn + rec;
}

// out[0..an+bn) = a * b; dispatches schoolbook / Karatsuba / chopped
// Karatsuba for unbalanced operands. Overwrites out.
void mulRaw(const Limb* a, std::size_t an, const Limb* b, std::size_t bn, Limb* out,
            Limb* scratch) {
  if (an < bn) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  if (bn < BigUInt::kKaratsubaThresholdLimbs) {
    mulSchoolbookRaw(a, an, b, bn, out);
    return;
  }
  if (an == bn) {
    karatsubaEqualRaw(a, b, an, out, scratch);
    return;
  }
  // Chop the longer operand into bn-limb blocks, each multiplied balanced.
  std::fill(out, out + an + bn, 0);
  Limb* temp = scratch;
  Limb* rest = scratch + 2 * bn;
  for (std::size_t offset = 0; offset < an; offset += bn) {
    std::size_t blockLen = std::min(bn, an - offset);
    if (blockLen == bn) {
      karatsubaEqualRaw(a + offset, b, bn, temp, rest);
    } else {
      mulRaw(a + offset, blockLen, b, bn, temp, rest);
    }
    addRawAt(out + offset, an + bn - offset, temp, blockLen + bn);
  }
}

}  // namespace

BigUInt::BigUInt(std::uint64_t value) {
  if (value == 0) return;
#if defined(DIP_BIGUINT_LIMB32)
  limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
#else
  limbs_.push_back(value);
#endif
}

void BigUInt::assignU64(std::uint64_t value) {
  limbs_.clear();
  if (value == 0) return;
#if defined(DIP_BIGUINT_LIMB32)
  limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
#else
  limbs_.push_back(value);
#endif
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::fromWords(std::vector<Limb> words) {
  BigUInt out;
  out.limbs_ = std::move(words);
  out.normalize();
  return out;
}

BigUInt BigUInt::fromLimbs(const std::vector<std::uint32_t>& limbs) {
  BigUInt out;
#if defined(DIP_BIGUINT_LIMB32)
  out.limbs_ = limbs;
#else
  out.limbs_.assign((limbs.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    out.limbs_[i / 2] |= static_cast<Limb>(limbs[i]) << (32 * (i & 1));
  }
#endif
  out.normalize();
  return out;
}

BigUInt BigUInt::fromDecimal(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigUInt::fromDecimal: empty string");
  BigUInt out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t len = (pos == 0) ? (text.size() % kDecChunkDigits) : kDecChunkDigits;
    if (len == 0) len = kDecChunkDigits;
    Limb chunk = 0;
    for (std::size_t i = 0; i < len; ++i) {
      char c = text[pos + i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigUInt::fromDecimal: non-digit character");
      }
      chunk = chunk * 10 + static_cast<Limb>(c - '0');
    }
    // out = out * 10^len + chunk, fused in one limb pass.
    Limb mult = pow10Limb(static_cast<unsigned>(len));
    Limb carry = chunk;
    for (auto& limb : out.limbs_) {
      DLimb cur = static_cast<DLimb>(limb) * mult + carry;
      limb = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    if (carry) out.limbs_.push_back(carry);
    pos += len;
  }
  return out;
}

BigUInt BigUInt::fromHex(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigUInt::fromHex: empty string");
  BigUInt out;
  out.limbs_.assign((4 * text.size() + kLimbBits - 1) / kLimbBits, 0);
  std::size_t bitPos = 0;
  for (std::size_t i = text.size(); i-- > 0;) {
    int digit = hexDigitValue(text[i]);
    if (digit < 0) throw std::invalid_argument("BigUInt::fromHex: non-hex character");
    out.limbs_[bitPos / kLimbBits] |=
        static_cast<Limb>(digit) << (bitPos % kLimbBits);
    bitPos += 4;
  }
  out.normalize();
  return out;
}

std::size_t BigUInt::bitLength() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * kLimbBits +
         static_cast<std::size_t>(std::bit_width(limbs_.back()));
}

bool BigUInt::bit(std::size_t i) const {
  std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::uint64_t BigUInt::toU64() const {
  if (!fitsU64()) throw std::overflow_error("BigUInt::toU64: value exceeds 64 bits");
  std::uint64_t value = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = (value << (kLimbBits - 1)) << 1 | limbs_[i];
  }
  return value;
}

double BigUInt::toDouble() const {
  double value = 0.0;
  const double base = std::ldexp(1.0, kLimbBits);
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    value = value * base + static_cast<double>(*it);
    if (!std::isfinite(value)) return std::numeric_limits<double>::infinity();
  }
  return value;
}

double BigUInt::log2() const {
  if (limbs_.empty()) return -std::numeric_limits<double>::infinity();
  // Use the top (up to) two limbs for the mantissa and count the rest as shift.
  std::size_t nLimbs = limbs_.size();
  const double base = std::ldexp(1.0, kLimbBits);
  double mantissa = 0.0;
  std::size_t used = std::min<std::size_t>(2, nLimbs);
  for (std::size_t i = 0; i < used; ++i) {
    mantissa = mantissa * base + static_cast<double>(limbs_[nLimbs - 1 - i]);
  }
  return std::log2(mantissa) +
         static_cast<double>(kLimbBits) * static_cast<double>(nLimbs - used);
}

std::string BigUInt::toDecimal() const {
  if (limbs_.empty()) return "0";
  std::string digits;  // Least significant first; reversed at the end.
  std::vector<Limb> work = limbs_;
  while (!work.empty()) {
    // Divide `work` by 10^kDecChunkDigits in place; the remainder yields a
    // whole chunk of digits per pass.
    DLimb remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      DLimb cur = (remainder << kLimbBits) | work[i];
      work[i] = static_cast<Limb>(cur / kDecChunkBase);
      remainder = cur % kDecChunkBase;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    Limb chunk = static_cast<Limb>(remainder);
    if (work.empty()) {
      while (chunk) {
        digits.push_back(static_cast<char>('0' + chunk % 10));
        chunk /= 10;
      }
    } else {
      for (unsigned i = 0; i < kDecChunkDigits; ++i) {
        digits.push_back(static_cast<char>('0' + chunk % 10));
        chunk /= 10;
      }
    }
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUInt::toHex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = kLimbBits - 4; shift >= 0; shift -= 4) {
      out.push_back(kHex[(limbs_[i] >> shift) & 0xF]);
    }
  }
  std::size_t firstNonZero = out.find_first_not_of('0');
  return out.substr(firstNonZero);
}

std::strong_ordering BigUInt::operator<=>(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  Limb carry = addRaw(limbs_.data(), limbs_.size(), rhs.limbs_.data(),
                      rhs.limbs_.size());
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUInt::operator-=: negative result");
  subRaw(limbs_.data(), limbs_.size(), rhs.limbs_.data(), rhs.limbs_.size());
  normalize();
  return *this;
}

void BigUInt::mulInto(const BigUInt& lhs, const BigUInt& rhs, BigUInt& out,
                      std::vector<Limb>& scratch) {
  if (&out == &lhs || &out == &rhs) {
    out = lhs * rhs;
    return;
  }
  if (lhs.isZero() || rhs.isZero()) {
    out.limbs_.clear();
    return;
  }
  const std::size_t an = lhs.limbs_.size();
  const std::size_t bn = rhs.limbs_.size();
  std::size_t need = mulScratchLimbs(an, bn);
  if (scratch.size() < need) scratch.resize(need);
  out.limbs_.resize(an + bn);
  mulRaw(lhs.limbs_.data(), an, rhs.limbs_.data(), bn, out.limbs_.data(),
         scratch.data());
  out.normalize();
}

BigUInt operator*(const BigUInt& lhs, const BigUInt& rhs) {
  BigUInt out;
  std::vector<BigUInt::Limb> scratch;
  BigUInt::mulInto(lhs, rhs, out, scratch);
  return out;
}

BigUInt& BigUInt::operator*=(const BigUInt& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUInt& BigUInt::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limbShift = bits / kLimbBits;
  const unsigned bitShift = static_cast<unsigned>(bits % kLimbBits);
  const std::size_t oldSize = limbs_.size();
  limbs_.resize(oldSize + limbShift + (bitShift ? 1 : 0), 0);
  if (bitShift) {
    limbs_[oldSize + limbShift] = limbs_[oldSize - 1] >> (kLimbBits - bitShift);
    for (std::size_t i = oldSize - 1; i-- > 0;) {
      limbs_[i + limbShift + 1] =
          (limbs_[i + 1] << bitShift) | (limbs_[i] >> (kLimbBits - bitShift));
    }
    limbs_[limbShift] = limbs_[0] << bitShift;
  } else {
    for (std::size_t i = oldSize; i-- > 0;) limbs_[i + limbShift] = limbs_[i];
  }
  std::fill(limbs_.begin(), limbs_.begin() + limbShift, 0);
  normalize();
  return *this;
}

BigUInt& BigUInt::operator>>=(std::size_t bits) {
  if (limbs_.empty()) return *this;
  std::size_t limbShift = bits / kLimbBits;
  unsigned bitShift = static_cast<unsigned>(bits % kLimbBits);
  if (limbShift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  std::size_t newSize = limbs_.size() - limbShift;
  for (std::size_t i = 0; i < newSize; ++i) {
    Limb cur = limbs_[i + limbShift] >> bitShift;
    if (bitShift && i + limbShift + 1 < limbs_.size()) {
      cur |= limbs_[i + limbShift + 1] << (kLimbBits - bitShift);
    }
    limbs_[i] = cur;
  }
  limbs_.resize(newSize);
  normalize();
  return *this;
}

std::uint32_t BigUInt::modU32(std::uint32_t modulus) const {
  if (modulus == 0) throw std::domain_error("BigUInt::modU32: division by zero");
  std::uint64_t remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
#if defined(DIP_BIGUINT_LIMB32)
    remainder = ((remainder << 32) | limbs_[i]) % modulus;
#else
    // Split each 64-bit limb into 32-bit halves so the running value stays
    // within a native 64-bit division.
    remainder = ((remainder << 32) | (limbs_[i] >> 32)) % modulus;
    remainder = ((remainder << 32) | (limbs_[i] & 0xFFFFFFFFull)) % modulus;
#endif
  }
  return static_cast<std::uint32_t>(remainder);
}

std::uint64_t BigUInt::modU64(std::uint64_t modulus) const {
  if (modulus == 0) throw std::domain_error("BigUInt::modU64: division by zero");
#if defined(DIP_BIGUINT_LIMB32)
  return (*this % BigUInt{modulus}).toU64();
#else
  DLimb remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    DLimb cur = (remainder << kLimbBits) | limbs_[i];
    remainder = cur % modulus;
  }
  return static_cast<std::uint64_t>(remainder);
#endif
}

DivModResult divMod(const BigUInt& dividend, const BigUInt& divisor) {
  if (divisor.isZero()) throw std::domain_error("BigUInt::divMod: division by zero");
  if (dividend < divisor) return {BigUInt{}, dividend};

  // Single-limb divisor fast path.
  if (divisor.limbs_.size() == 1) {
    Limb d = divisor.limbs_[0];
    BigUInt quotient;
    quotient.limbs_.assign(dividend.limbs_.size(), 0);
    DLimb remainder = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      DLimb cur = (remainder << kLimbBits) | dividend.limbs_[i];
      quotient.limbs_[i] = static_cast<Limb>(cur / d);
      remainder = cur % d;
    }
    quotient.normalize();
    BigUInt rem;
    if (remainder) rem.limbs_.push_back(static_cast<Limb>(remainder));
    return {std::move(quotient), std::move(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D (4.3.1), base 2^kLimbBits.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = dividend.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  const unsigned shift = static_cast<unsigned>(
      kLimbBits - std::bit_width(divisor.limbs_.back()));
  BigUInt u = dividend << shift;
  BigUInt v = divisor << shift;
  u.limbs_.resize(dividend.limbs_.size() + 1, 0);  // Room for u[m + n].

  BigUInt quotient;
  quotient.limbs_.assign(m + 1, 0);

  const DLimb vTop = v.limbs_[n - 1];
  const DLimb vSecond = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient digit.
    DLimb numerator =
        (static_cast<DLimb>(u.limbs_[j + n]) << kLimbBits) | u.limbs_[j + n - 1];
    DLimb qHat = numerator / vTop;
    DLimb rHat = numerator % vTop;
    while (qHat >= kLimbBase ||
           qHat * vSecond > ((rHat << kLimbBits) | u.limbs_[j + n - 2])) {
      --qHat;
      rHat += vTop;
      if (rHat >= kLimbBase) break;
    }

    // D4: multiply-and-subtract u[j .. j+n] -= qHat * v.
    Limb q = static_cast<Limb>(qHat);
    Limb borrow = 0;
    Limb mulCarry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DLimb product = static_cast<DLimb>(q) * v.limbs_[i] + mulCarry;
      mulCarry = static_cast<Limb>(product >> kLimbBits);
      Limb pLow = static_cast<Limb>(product);
      Limb t1 = u.limbs_[j + i] - pLow;
      Limb b1 = t1 > u.limbs_[j + i];
      Limb t2 = t1 - borrow;
      Limb b2 = t2 > t1;
      u.limbs_[j + i] = t2;
      borrow = b1 | b2;
    }
    Limb top = u.limbs_[j + n];
    Limb t1 = top - mulCarry;
    Limb b1 = t1 > top;
    Limb t2 = t1 - borrow;
    Limb b2 = t2 > t1;
    u.limbs_[j + n] = t2;  // Wraps mod 2^kLimbBits if negative.
    bool negative = b1 || b2;

    // D5/D6: if we subtracted too much, add v back and decrement the digit.
    if (negative) {
      --q;
      Limb addCarry = addRaw(&u.limbs_[j], n, v.limbs_.data(), n);
      u.limbs_[j + n] = static_cast<Limb>(u.limbs_[j + n] + addCarry);
    }

    quotient.limbs_[j] = q;
  }

  quotient.normalize();
  u.limbs_.resize(n);
  u.normalize();
  u >>= shift;
  return {std::move(quotient), std::move(u)};
}

BigUInt BigUInt::pow(const BigUInt& base, std::uint64_t exponent) {
  BigUInt result{1};
  BigUInt square = base;
  while (exponent) {
    if (exponent & 1) result *= square;
    exponent >>= 1;
    if (exponent) square *= square;
  }
  return result;
}

BigUInt addMod(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  BigUInt sum = a + b;
  if (sum >= m) sum -= m;
  return sum;
}

void addModInPlace(BigUInt& acc, const BigUInt& term, const BigUInt& m) {
  acc += term;
  if (acc >= m) acc -= m;
}

BigUInt subMod(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  if (a >= b) return a - b;
  return a + m - b;
}

BigUInt mulMod(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  if (m.isZero()) throw std::domain_error("mulMod: zero modulus");
  if (m.fitsU64() && a.fitsU64() && b.fitsU64()) {
    __extension__ using U128 = unsigned __int128;
    U128 product = static_cast<U128>(a.toU64()) * b.toU64();
    return BigUInt{static_cast<std::uint64_t>(product % m.toU64())};
  }
  if (m.isOdd()) {
    // Two REDC passes via the memoized context beat a Karatsuba multiply
    // followed by Knuth-D division.
    return cachedMontgomeryContext(m)->mulMod(a, b);
  }
  return (a * b) % m;
}

BigUInt powMod(const BigUInt& base, const BigUInt& exponent, const BigUInt& m) {
  if (m.isZero()) throw std::domain_error("powMod: zero modulus");
  if (m == BigUInt{1}) return BigUInt{};
  if (m.fitsU64()) {
    const std::uint64_t mv = m.toU64();
    __extension__ using U128 = unsigned __int128;
    std::uint64_t result = 1 % mv;
    std::uint64_t square = base.modU64(mv);
    std::size_t bits = exponent.bitLength();
    for (std::size_t i = 0; i < bits; ++i) {
      if (exponent.bit(i)) {
        result = static_cast<std::uint64_t>(static_cast<U128>(result) * square % mv);
      }
      if (i + 1 < bits) {
        square = static_cast<std::uint64_t>(static_cast<U128>(square) * square % mv);
      }
    }
    return BigUInt{result};
  }
  if (m.isOdd()) return cachedMontgomeryContext(m)->powMod(base, exponent);
  return BarrettContext(m).powMod(base, exponent);
}

}  // namespace dip::util
