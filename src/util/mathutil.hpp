// Small numeric helpers shared across the library.
#pragma once

#include <cstdint>

#include "util/biguint.hpp"

namespace dip::util {

// Floor of log2(value); requires value > 0.
unsigned floorLog2(std::uint64_t value);
// Ceiling of log2(value); requires value > 0. ceilLog2(1) == 0.
unsigned ceilLog2(std::uint64_t value);

// n! as a BigUInt (the Goldwasser-Sipser set sizes are n! and 2 n!).
BigUInt factorial(std::uint64_t n);

// Wilson 95% score interval for a binomial proportion; used when reporting
// empirical acceptance probabilities of protocols.
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
  double pointEstimate = 0.0;
};
WilsonInterval wilson95(std::uint64_t successes, std::uint64_t trials);

// Pr[Binomial(k, p) >= threshold], computed exactly in log space. Used to
// size the GNI protocol's parallel-repetition amplification.
double binomialTailGE(std::uint64_t k, double p, std::uint64_t threshold);

}  // namespace dip::util
