#include "util/arena.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DIP_ARENA_ASAN 1
#endif
#endif
#if !defined(DIP_ARENA_ASAN) && defined(__SANITIZE_ADDRESS__)
#define DIP_ARENA_ASAN 1
#endif

#if defined(DIP_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#define DIP_ARENA_POISON(addr, size) __asan_poison_memory_region((addr), (size))
#define DIP_ARENA_UNPOISON(addr, size) __asan_unpoison_memory_region((addr), (size))
#else
#define DIP_ARENA_POISON(addr, size) ((void)0)
#define DIP_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace dip::util {

Arena::Arena(std::size_t firstBlockBytes)
    : firstBlockBytes_(std::max<std::size_t>(firstBlockBytes, 64)) {}

Arena::~Arena() {
#if defined(DIP_ARENA_ASAN)
  // Unpoison before the unique_ptrs free: the allocator may legitimately
  // reuse the pages, and freeing poisoned memory trips some ASan builds.
  for (Block& block : blocks_) {
    DIP_ARENA_UNPOISON(block.data.get(), block.size);
  }
#endif
}

Arena::Block& Arena::growFor(std::size_t bytes) {
  // Reuse an already-chained block first (post-reset path), otherwise chain
  // a new one: doubling size, clamped, and never smaller than the request.
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    if (blocks_[current_].size - blocks_[current_].used >= bytes) {
      return blocks_[current_];
    }
  }
  std::size_t nextSize = blocks_.empty()
                             ? firstBlockBytes_
                             : std::min(blocks_.back().size * 2, kMaxBlockBytes);
  nextSize = std::max(nextSize, bytes);
  Block block;
  block.data = std::make_unique<std::byte[]>(nextSize);
  block.size = nextSize;
  DIP_ARENA_POISON(block.data.get(), block.size);
  capacity_ += nextSize;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0 ||
      align > alignof(std::max_align_t)) {
    throw std::invalid_argument("Arena::allocate: bad alignment");
  }
  if (bytes == 0) bytes = 1;  // Distinct live pointers for zero-byte asks.
  if (blocks_.empty()) growFor(bytes + align);
  Block* block = &blocks_[current_];
  auto aligned = [&](const Block& b) {
    std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get()) + b.used;
    return (align - base % align) % align;
  };
  std::size_t pad = aligned(*block);
  if (block->used + pad + bytes > block->size) {
    block = &growFor(bytes + align);
    pad = aligned(*block);
  }
  std::byte* out = block->data.get() + block->used + pad;
  DIP_ARENA_UNPOISON(out, bytes);
  block->used += pad + bytes;
  bytesInUse_ += pad + bytes;
  return out;
}

void Arena::reset() {
  for (Block& block : blocks_) {
    DIP_ARENA_POISON(block.data.get(), block.size);
    block.used = 0;
  }
  current_ = 0;
  bytesInUse_ = 0;
}

}  // namespace dip::util
