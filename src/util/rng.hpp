// Deterministic, splittable pseudo-random generator (xoshiro256**).
//
// Every verifier node in a simulated protocol execution draws its private
// challenge bits from its own Rng stream, derived from a master seed, so
// runs are exactly reproducible and node randomness is independent (as
// Definition 1 of the paper requires).
#pragma once

#include <array>
#include <cstdint>

#include "util/biguint.hpp"

namespace dip::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t nextU64();
  // Uniform in [0, bound); requires bound > 0.
  std::uint64_t nextBelow(std::uint64_t bound);
  // Uniform k-bit value, 0 <= k <= 64.
  std::uint64_t nextBits(unsigned k);
  bool nextBool() { return nextU64() >> 63; }
  // Bernoulli(probability).
  bool nextChance(double probability);
  // Uniform BigUInt in [0, bound); requires bound > 0. Rejection sampling.
  BigUInt nextBigBelow(const BigUInt& bound);
  // Uniform BigUInt with exactly `bits` random bits (value < 2^bits).
  BigUInt nextBigBits(std::size_t bits);

  // Derives an independent child stream; child i of a given parent is
  // deterministic. Used to hand each node its own randomness. NOTE: split
  // consumes one output of the parent, so successive split(i) calls with the
  // same i yield DIFFERENT streams. Use child(i) when the derivation must be
  // a pure function of (parent state, i).
  Rng split(std::uint64_t streamId);

  // Counter-based stream derivation: a pure function of the CURRENT state
  // and the index — the parent is not advanced, and child(i) called twice
  // returns the same stream. This is what gives the trial engine streams
  // that depend only on (master seed, trial index), independent of how many
  // trials ran before or on which thread.
  Rng child(std::uint64_t index) const;

 private:
  std::array<std::uint64_t, 4> state_;
};

// The name the simulation layer uses for a per-trial stream handle.
using RngStream = Rng;

}  // namespace dip::util
