#include "util/biguint_ref.hpp"

#include <algorithm>
#include <stdexcept>

namespace dip::util {

namespace {

constexpr std::uint64_t kLimbBase = 1ull << 32;

int hexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigUIntRef::BigUIntRef(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

void BigUIntRef::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUIntRef BigUIntRef::fromLimbs(std::vector<std::uint32_t> limbs) {
  BigUIntRef out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigUIntRef BigUIntRef::fromDecimal(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigUIntRef::fromDecimal: empty string");
  BigUIntRef out;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigUIntRef::fromDecimal: non-digit character");
    }
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : out.limbs_) {
      std::uint64_t cur = static_cast<std::uint64_t>(limb) * 10 + carry;
      limb = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  return out;
}

BigUIntRef BigUIntRef::fromHex(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigUIntRef::fromHex: empty string");
  BigUIntRef out;
  for (char c : text) {
    int digit = hexDigitValue(c);
    if (digit < 0) throw std::invalid_argument("BigUIntRef::fromHex: non-hex character");
    out <<= 4;
    if (digit != 0) {
      if (out.limbs_.empty()) out.limbs_.push_back(0);
      out.limbs_[0] |= static_cast<std::uint32_t>(digit);
    }
  }
  return out;
}

std::size_t BigUIntRef::bitLength() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUIntRef::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigUIntRef::toU64() const {
  if (!fitsU64()) throw std::overflow_error("BigUIntRef::toU64: value exceeds 64 bits");
  std::uint64_t value = 0;
  if (limbs_.size() > 1) value = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) value |= limbs_[0];
  return value;
}

std::string BigUIntRef::toDecimal() const {
  if (limbs_.empty()) return "0";
  std::string digits;
  std::vector<std::uint32_t> work = limbs_;
  while (!work.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      std::uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 10);
      remainder = cur % 10;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    digits.push_back(static_cast<char>('0' + remainder));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUIntRef::toHex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(limbs_[i] >> shift) & 0xF]);
    }
  }
  std::size_t firstNonZero = out.find_first_not_of('0');
  return out.substr(firstNonZero);
}

std::strong_ordering BigUIntRef::operator<=>(const BigUIntRef& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUIntRef& BigUIntRef::operator+=(const BigUIntRef& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) cur += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(cur);
    carry = cur >> 32;
  }
  if (carry) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUIntRef& BigUIntRef::operator-=(const BigUIntRef& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUIntRef::operator-=: negative result");
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t cur = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) cur -= rhs.limbs_[i];
    if (cur < 0) {
      cur += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(cur);
  }
  normalize();
  return *this;
}

BigUIntRef operator*(const BigUIntRef& lhs, const BigUIntRef& rhs) {
  if (lhs.isZero() || rhs.isZero()) return BigUIntRef{};
  BigUIntRef out;
  out.limbs_.assign(lhs.limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < lhs.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t a = lhs.limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = a * rhs.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUIntRef& BigUIntRef::operator*=(const BigUIntRef& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUIntRef& BigUIntRef::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  std::size_t limbShift = bits / 32;
  unsigned bitShift = static_cast<unsigned>(bits % 32);
  std::vector<std::uint32_t> shifted(limbs_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) << bitShift;
    shifted[i + limbShift] |= static_cast<std::uint32_t>(cur);
    shifted[i + limbShift + 1] |= static_cast<std::uint32_t>(cur >> 32);
  }
  limbs_ = std::move(shifted);
  normalize();
  return *this;
}

BigUIntRef& BigUIntRef::operator>>=(std::size_t bits) {
  if (limbs_.empty()) return *this;
  std::size_t limbShift = bits / 32;
  unsigned bitShift = static_cast<unsigned>(bits % 32);
  if (limbShift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  std::size_t newSize = limbs_.size() - limbShift;
  for (std::size_t i = 0; i < newSize; ++i) {
    std::uint64_t cur = limbs_[i + limbShift] >> bitShift;
    if (bitShift && i + limbShift + 1 < limbs_.size()) {
      cur |= static_cast<std::uint64_t>(limbs_[i + limbShift + 1]) << (32 - bitShift);
    }
    limbs_[i] = static_cast<std::uint32_t>(cur);
  }
  limbs_.resize(newSize);
  normalize();
  return *this;
}

std::uint32_t BigUIntRef::modU32(std::uint32_t modulus) const {
  if (modulus == 0) throw std::domain_error("BigUIntRef::modU32: division by zero");
  std::uint64_t remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    remainder = ((remainder << 32) | limbs_[i]) % modulus;
  }
  return static_cast<std::uint32_t>(remainder);
}

DivModResultRef refDivMod(const BigUIntRef& dividend, const BigUIntRef& divisor) {
  if (divisor.isZero()) throw std::domain_error("BigUIntRef::divMod: division by zero");
  if (dividend < divisor) return {BigUIntRef{}, dividend};

  // Single-limb divisor fast path.
  if (divisor.limbs_.size() == 1) {
    std::uint32_t d = divisor.limbs_[0];
    BigUIntRef quotient;
    quotient.limbs_.assign(dividend.limbs_.size(), 0);
    std::uint64_t remainder = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      std::uint64_t cur = (remainder << 32) | dividend.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      remainder = cur % d;
    }
    quotient.normalize();
    return {std::move(quotient), BigUIntRef{remainder}};
  }

  // Knuth TAOCP vol. 2, Algorithm D (4.3.1), base 2^32.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = dividend.limbs_.size() - n;

  unsigned shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  BigUIntRef u = dividend << shift;
  BigUIntRef v = divisor << shift;
  u.limbs_.resize(dividend.limbs_.size() + 1, 0);

  BigUIntRef quotient;
  quotient.limbs_.assign(m + 1, 0);

  const std::uint64_t vTop = v.limbs_[n - 1];
  const std::uint64_t vSecond = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    std::uint64_t qHat = numerator / vTop;
    std::uint64_t rHat = numerator % vTop;
    while (qHat >= kLimbBase ||
           qHat * vSecond > ((rHat << 32) | u.limbs_[j + n - 2])) {
      --qHat;
      rHat += vTop;
      if (rHat >= kLimbBase) break;
    }

    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = qHat * v.limbs_[i] + carry;
      carry = product >> 32;
      std::int64_t sub = static_cast<std::int64_t>(u.limbs_[j + i]) -
                         static_cast<std::int64_t>(product & 0xFFFFFFFFull) - borrow;
      if (sub < 0) {
        sub += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[j + i] = static_cast<std::uint32_t>(sub);
    }
    std::int64_t subTop = static_cast<std::int64_t>(u.limbs_[j + n]) -
                          static_cast<std::int64_t>(carry) - borrow;
    bool negative = subTop < 0;
    u.limbs_[j + n] = static_cast<std::uint32_t>(subTop);

    if (negative) {
      --qHat;
      std::uint64_t addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(u.limbs_[j + i]) + v.limbs_[i] + addCarry;
        u.limbs_[j + i] = static_cast<std::uint32_t>(sum);
        addCarry = sum >> 32;
      }
      u.limbs_[j + n] = static_cast<std::uint32_t>(u.limbs_[j + n] + addCarry);
    }

    quotient.limbs_[j] = static_cast<std::uint32_t>(qHat);
  }

  quotient.normalize();
  u.limbs_.resize(n);
  u.normalize();
  u >>= shift;
  return {std::move(quotient), std::move(u)};
}

BigUIntRef BigUIntRef::pow(const BigUIntRef& base, std::uint64_t exponent) {
  BigUIntRef result{1};
  BigUIntRef square = base;
  while (exponent) {
    if (exponent & 1) result *= square;
    exponent >>= 1;
    if (exponent) square *= square;
  }
  return result;
}

BigUIntRef refAddMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m) {
  BigUIntRef sum = a + b;
  if (sum >= m) sum -= m;
  return sum;
}

BigUIntRef refSubMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m) {
  if (a >= b) return a - b;
  return a + m - b;
}

BigUIntRef refMulMod(const BigUIntRef& a, const BigUIntRef& b, const BigUIntRef& m) {
  if (m.isZero()) throw std::domain_error("refMulMod: zero modulus");
  return (a * b) % m;
}

BigUIntRef refPowMod(const BigUIntRef& base, const BigUIntRef& exponent,
                     const BigUIntRef& m) {
  if (m.isZero()) throw std::domain_error("refPowMod: zero modulus");
  if (m == BigUIntRef{1}) return BigUIntRef{};
  BigUIntRef result{1};
  BigUIntRef square = base % m;
  std::size_t bits = exponent.bitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = refMulMod(result, square, m);
    if (i + 1 < bits) square = refMulMod(square, square, m);
  }
  return result;
}

}  // namespace dip::util
