// Montgomery modular arithmetic for odd moduli.
//
// Miller-Rabin primality testing (the prime searches behind every hash
// family here) spends nearly all of its time in modular multiplications
// with a FIXED modulus. Montgomery representation replaces each division by
// the modulus with shifts and multiplications: with k-limb operands, a
// Montgomery product (CIOS) costs ~2k^2 word multiplications and no
// division, versus mul + Knuth-D division otherwise.
//
// Usage: construct one context per modulus, then powMod/mulMod through it.
#pragma once

#include "util/biguint.hpp"

namespace dip::util {

class MontgomeryContext {
 public:
  // Requires an odd modulus >= 3.
  explicit MontgomeryContext(BigUInt modulus);

  const BigUInt& modulus() const { return m_; }

  // (a * b) mod m via to/from Montgomery round trips.
  BigUInt mulMod(const BigUInt& a, const BigUInt& b) const;
  // (base ^ exponent) mod m; the whole ladder runs in Montgomery form.
  BigUInt powMod(const BigUInt& base, const BigUInt& exponent) const;

  // Representation converters (exposed for tests).
  BigUInt toMontgomery(const BigUInt& x) const;    // x * R mod m, R = 2^(32k).
  BigUInt fromMontgomery(const BigUInt& x) const;  // x * R^-1 mod m.

 private:
  // REDC product: a * b * R^-1 mod m for a, b in Montgomery form (CIOS).
  BigUInt montgomeryProduct(const BigUInt& a, const BigUInt& b) const;

  BigUInt m_;
  std::size_t numLimbs_ = 0;   // k: limbs of m.
  std::uint32_t mPrime_ = 0;   // -m^-1 mod 2^32.
  BigUInt rModM_;              // R mod m (Montgomery form of 1).
  BigUInt rSquared_;           // R^2 mod m (for toMontgomery).
};

}  // namespace dip::util
