// Montgomery and Barrett modular arithmetic for fixed moduli.
//
// Miller-Rabin primality testing and the protocols' Horner hash chains spend
// nearly all of their time in modular multiplications with a FIXED modulus.
// Montgomery representation replaces each division by the modulus with
// shifts and multiplications: with k-limb operands, a Montgomery product
// (CIOS, coarsely integrated operand scanning) costs ~2k^2 word
// multiplications and no division, versus mul + Knuth-D division otherwise.
//
// Two usage tiers:
//  - Plain compat API (mulMod/powMod on BigUInt): one context per modulus,
//    conversions handled internally per call.
//  - In-domain value API (MontgomeryValue + Scratch): pin operands in the
//    Montgomery domain once, chain multiplies/adds at one REDC per multiply
//    and zero heap allocations after scratch warm-up, convert out once at
//    the end. Montgomery form is linear, so in-domain add/sub are ordinary
//    modular add/sub, and equality in-domain is equality of residues.
//
// BarrettContext covers fixed moduli of either parity (HAC Algorithm 14.42)
// for the paths Montgomery cannot serve (even moduli).
#pragma once

#include <memory>
#include <vector>

#include "util/biguint.hpp"

namespace dip::util {

class MontgomeryContext;

// A value pinned in the Montgomery domain (x * R mod m) of one fixed
// context: exactly numLimbs() little-endian limbs, always < m. The domain
// map is a bijection, so operator== compares the underlying residues.
// Values must originate from the owning context (toValue / oneValue /
// zeroValue / mulValue / powValue); a default-constructed value is only a
// target slot.
class MontgomeryValue {
 public:
  MontgomeryValue() = default;
  bool operator==(const MontgomeryValue&) const = default;
  const std::vector<BigUInt::Limb>& limbs() const { return limbs_; }

 private:
  friend class MontgomeryContext;
  std::vector<BigUInt::Limb> limbs_;
};

class MontgomeryContext {
 public:
  using Limb = BigUInt::Limb;

  // Flat caller-provided scratch, lazily sized to the context: t is the
  // CIOS accumulator (k + 2 limbs), table the fixed-window powMod table
  // (16 * k limbs), stage the padded plain-operand buffer (k limbs).
  // Reusing one Scratch across a hash chain keeps the steady state
  // allocation-free; a Scratch may serve contexts of any size.
  struct Scratch {
    std::vector<Limb> t;
    std::vector<Limb> table;
    std::vector<Limb> stage;
  };

  // Requires an odd modulus >= 3.
  explicit MontgomeryContext(BigUInt modulus);

  const BigUInt& modulus() const { return m_; }
  std::size_t numLimbs() const { return numLimbs_; }

  // --- In-domain value API -----------------------------------------------

  // x * R mod m (reduces x mod m first if needed).
  MontgomeryValue toValue(const BigUInt& x) const;
  void toValue(const BigUInt& x, MontgomeryValue& out, Scratch& scratch) const;
  // v * R^-1 mod m: back to a plain residue.
  BigUInt fromValue(const MontgomeryValue& v) const;
  const MontgomeryValue& oneValue() const { return one_; }  // Mont(1) = R mod m.
  const MontgomeryValue& zeroValue() const { return zero_; }
  // out = a * b in-domain (one REDC); out may alias a or b.
  void mulValue(const MontgomeryValue& a, const MontgomeryValue& b,
                MontgomeryValue& out, Scratch& scratch) const;
  // In-domain linear ops: Mont(x) ± Mont(y) = Mont(x ± y).
  void addValue(const MontgomeryValue& a, const MontgomeryValue& b,
                MontgomeryValue& out) const;
  void subValue(const MontgomeryValue& a, const MontgomeryValue& b,
                MontgomeryValue& out) const;
  // out = base ^ exponent in-domain, fixed 4-bit windows (4 squarings plus
  // at most one table multiply per window).
  void powValue(const MontgomeryValue& base, const BigUInt& exponent,
                MontgomeryValue& out, Scratch& scratch) const;

  // Precomputed fixed-window table for a pinned base. powValue rebuilds its
  // 16-entry power table on every call (15 multiplies); when the same base
  // is raised to many exponents — the hash evaluators re-exponentiate the
  // pinned index a across a whole trial batch — prepareWindow pays that
  // build once and powValueWindowed runs just the ladder. Results are
  // identical to powValue. A window is bound to the context (limb count)
  // and base it was built from; rebuild it when either changes.
  struct PowWindow {
    std::vector<Limb> table;  // 16 * k limbs: Mont(base^w), w in [0, 16).
    std::size_t limbs = 0;    // k at build time; 0 = unbuilt.
  };
  void prepareWindow(const MontgomeryValue& base, PowWindow& window,
                     Scratch& scratch) const;
  void powValueWindowed(const PowWindow& window, const BigUInt& exponent,
                        MontgomeryValue& out, Scratch& scratch) const;

  // --- Raw-limb batch API --------------------------------------------------
  //
  // The batch hash engine keeps its power tables as flat numLimbs()-limb
  // little-endian residues in caller-owned storage (an arena), not as
  // MontgomeryValue heap vectors. These entry points run the same CIOS
  // kernels on such slices. Every pointer addresses exactly numLimbs()
  // limbs holding an in-domain residue < m; out may alias a or b (products
  // stage through scratch.t, adds are limb-parallel).

  // out = a * b in-domain (one REDC).
  void mulRaw(const Limb* a, const Limb* b, Limb* out, Scratch& scratch) const;
  // out = a + b mod m, in-domain.
  void addRaw(const Limb* a, const Limb* b, Limb* out) const;
  // Copies a value's limbs into a raw slice / reads them back out.
  void valueToRaw(const MontgomeryValue& v, Limb* out) const;
  BigUInt rawToPlain(const Limb* v) const;  // Convert-out (one REDC).

  // --- Plain-domain compat API -------------------------------------------

  // (a * b) mod m: two REDC passes (stage a, fold b into the domain), no
  // convert-out needed.
  BigUInt mulMod(const BigUInt& a, const BigUInt& b) const;
  // (base ^ exponent) mod m; the whole windowed ladder runs in-domain.
  BigUInt powMod(const BigUInt& base, const BigUInt& exponent) const;

  // Representation converters (exposed for tests).
  BigUInt toMontgomery(const BigUInt& x) const;    // x * R mod m, R = B^k.
  BigUInt fromMontgomery(const BigUInt& x) const;  // x * R^-1 mod m.

 private:
  // CIOS REDC product into t (k + 2 limbs): t = a * b * R^-1 mod m, with a
  // and b exactly k limbs. On return t[0..k) holds the reduced result.
  // t never aliases a, b, or the modulus; a may equal b (squaring) since
  // both are read-only.
  void montMulRaw(const Limb* __restrict a, const Limb* __restrict b,
                  Limb* __restrict t) const;
  // Fills table[w] = Mont(base^w) for w in [0, wMax]; t is a k + 2 limb
  // accumulator. The shared ladder below only dereferences entries a window
  // of the exponent can name, so small exponents get away with a prefix.
  void buildWindowTable(const Limb* base, unsigned wMax, Limb* table, Limb* t) const;
  // The 4-bit-window ladder over a prepared table (powValue's second half).
  void powWithTable(const Limb* table, const BigUInt& exponent, MontgomeryValue& out,
                    Scratch& scratch) const;
  // Pads a reduced plain value (< m) to k limbs in scratch.stage.
  const Limb* stagePlain(const BigUInt& x, Scratch& scratch) const;

  BigUInt m_;
  std::size_t numLimbs_ = 0;    // k: limbs of m.
  Limb mPrime_ = 0;             // -m^-1 mod 2^kLimbBits.
  std::vector<Limb> plainOne_;  // 1, padded to k limbs (for fromValue).
  MontgomeryValue one_;         // R mod m (Montgomery form of 1).
  MontgomeryValue zero_;
  MontgomeryValue rSquared_;    // R^2 mod m (raw limbs; toValue multiplier).
};

// Barrett reduction for a fixed modulus of any parity (HAC 14.42): one
// precomputed mu = floor(B^2k / m) turns each reduction into two
// multiplications and a couple of subtractions.
class BarrettContext {
 public:
  // Requires modulus >= 2.
  explicit BarrettContext(BigUInt modulus);

  const BigUInt& modulus() const { return m_; }

  // x mod m; requires x < B^2k (always true for products of reduced values).
  BigUInt reduce(const BigUInt& x) const;
  BigUInt mulMod(const BigUInt& a, const BigUInt& b) const;
  BigUInt powMod(const BigUInt& base, const BigUInt& exponent) const;

 private:
  BigUInt m_;
  BigUInt mu_;        // floor(B^2k / m).
  std::size_t k_ = 0; // Limbs of m.
};

// --- Memoized Montgomery contexts ----------------------------------------
//
// Hash families and the free mulMod/powMod fast paths all reduce by the same
// handful of field primes; constructing a context costs a full divMod for
// R^2 mod m. The cache memoizes one immutable context per modulus with
// single-flight locking (same discipline as util::cachedPrimeInRange):
// concurrent first-users of a modulus block on the one thread building it.
// Throws std::invalid_argument for moduli a context cannot serve (even or
// < 3) before touching the cache.
std::shared_ptr<const MontgomeryContext> cachedMontgomeryContext(const BigUInt& modulus);

// Observability hooks for tests: how many contexts were actually built since
// process start (or the last reset), and a test-only reset.
std::size_t montgomeryCacheBuildCount();
void montgomeryCacheResetForTests();

}  // namespace dip::util
