#include "util/primes.hpp"

#include <array>
#include <stdexcept>

#include "util/montgomery.hpp"

namespace dip::util {

namespace {

// Small primes for cheap trial division before Miller-Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round with the given base; n must be odd and > 3,
// n - 1 == d * 2^s with d odd. All modular work runs through a shared
// Montgomery context (n is fixed across rounds).
bool millerRabinRound(const MontgomeryContext& ctx, const BigUInt& nMinus1,
                      const BigUInt& d, std::size_t s, const BigUInt& base) {
  BigUInt x = ctx.powMod(base, d);
  if (x == BigUInt{1} || x == nMinus1) return true;
  for (std::size_t i = 1; i < s; ++i) {
    x = ctx.mulMod(x, x);
    if (x == nMinus1) return true;
    if (x == BigUInt{1}) return false;  // Non-trivial sqrt of 1 found.
  }
  return false;
}

}  // namespace

bool isProbablePrime(const BigUInt& candidate, Rng& rng, int rounds) {
  if (candidate < BigUInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (candidate == BigUInt{p}) return true;
    if (candidate.modU32(p) == 0) return false;
  }
  // candidate is odd and > 251 here.
  BigUInt nMinus1 = candidate - BigUInt{1};
  BigUInt d = nMinus1;
  std::size_t s = 0;
  while (!d.isOdd()) {
    d >>= 1;
    ++s;
  }
  MontgomeryContext ctx(candidate);
  BigUInt lowBound{2};
  BigUInt span = nMinus1 - BigUInt{2};  // Bases drawn from [2, n-2].
  for (int round = 0; round < rounds; ++round) {
    BigUInt base = addMod(rng.nextBigBelow(span), lowBound, candidate);
    if (!millerRabinRound(ctx, nMinus1, d, s, base)) return false;
  }
  return true;
}

BigUInt findPrimeInRange(const BigUInt& lo, const BigUInt& hi, Rng& rng) {
  if (hi < lo) throw std::invalid_argument("findPrimeInRange: empty range");
  BigUInt span = hi - lo + BigUInt{1};
  // By the prime number theorem a random value near x is prime with
  // probability ~ 1/ln(x); budget generously.
  const std::size_t bits = hi.bitLength();
  const std::size_t maxAttempts = 400 + 60 * bits;
  for (std::size_t attempt = 0; attempt < maxAttempts; ++attempt) {
    BigUInt candidate = lo + rng.nextBigBelow(span);
    if (!candidate.isOdd()) {
      if (candidate + BigUInt{1} > hi) continue;
      candidate += BigUInt{1};
    }
    if (isProbablePrime(candidate, rng)) return candidate;
  }
  throw std::runtime_error("findPrimeInRange: attempt budget exhausted");
}

BigUInt findPrimeWithBits(std::size_t bits, Rng& rng) {
  if (bits < 2) throw std::invalid_argument("findPrimeWithBits: need >= 2 bits");
  BigUInt lo = BigUInt{1} << (bits - 1);
  BigUInt hi = (BigUInt{1} << bits) - BigUInt{1};
  return findPrimeInRange(lo, hi, rng);
}

}  // namespace dip::util
