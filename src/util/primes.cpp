#include "util/primes.hpp"

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/montgomery.hpp"

namespace dip::util {

namespace {

// Small primes for cheap trial division before Miller-Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round with the given base; n must be odd and > 3,
// n - 1 == d * 2^s with d odd. The whole round runs inside the Montgomery
// domain: equality in-domain is equality of residues, so comparing against
// Mont(1) and Mont(n-1) needs zero convert-outs.
bool millerRabinRound(const MontgomeryContext& ctx, MontgomeryContext::Scratch& scratch,
                      const MontgomeryValue& oneV, const MontgomeryValue& nMinus1V,
                      const BigUInt& d, std::size_t s, const BigUInt& base) {
  MontgomeryValue x;
  ctx.toValue(base, x, scratch);
  ctx.powValue(x, d, x, scratch);
  if (x == oneV || x == nMinus1V) return true;
  for (std::size_t i = 1; i < s; ++i) {
    ctx.mulValue(x, x, x, scratch);
    if (x == nMinus1V) return true;
    if (x == oneV) return false;  // Non-trivial sqrt of 1 found.
  }
  return false;
}

// Miller-Rabin witness rounds for an odd candidate > 3 (no trial division).
// Draws one base from `rng` per round, exactly like the seed implementation,
// so callers' Rng streams are consumed identically.
bool millerRabinIsPrime(const BigUInt& candidate, Rng& rng, int rounds) {
  BigUInt nMinus1 = candidate - BigUInt{1};
  BigUInt d = nMinus1;
  std::size_t s = 0;
  while (!d.isOdd()) {
    d >>= 1;
    ++s;
  }
  MontgomeryContext ctx(candidate);
  MontgomeryContext::Scratch scratch;
  MontgomeryValue nMinus1V;
  ctx.toValue(nMinus1, nMinus1V, scratch);
  const MontgomeryValue& oneV = ctx.oneValue();
  BigUInt lowBound{2};
  BigUInt span = nMinus1 - BigUInt{2};  // Bases drawn from [2, n-2].
  for (int round = 0; round < rounds; ++round) {
    BigUInt base = addMod(rng.nextBigBelow(span), lowBound, candidate);
    if (!millerRabinRound(ctx, scratch, oneV, nMinus1V, d, s, base)) return false;
  }
  return true;
}

// --- Small-prime sieve prefilter -----------------------------------------
//
// Every odd prime below 2^16, packed into 64-bit products of consecutive
// primes. One modU64 pass per product plus one u64 gcd rejects any candidate
// sharing a factor with the group — ~90% of random odd candidates die in
// the first few groups, before any Miller-Rabin witness round. Only valid
// for candidates > 2^16 (a candidate cannot itself be one of the sieved
// primes there).

struct SieveGroups {
  std::vector<std::uint64_t> products;
};

const SieveGroups& smallPrimeSieve() {
  static const SieveGroups groups = [] {
    constexpr std::uint32_t kBound = 1u << 16;
    std::vector<bool> composite(kBound, false);
    SieveGroups out;
    std::uint64_t product = 1;
    for (std::uint32_t p = 3; p < kBound; p += 2) {
      if (composite[p]) continue;
      for (std::uint64_t q = static_cast<std::uint64_t>(p) * p; q < kBound; q += 2 * p) {
        composite[static_cast<std::uint32_t>(q)] = true;
      }
      if (product > (~0ull) / p) {
        out.products.push_back(product);
        product = 1;
      }
      product *= p;
    }
    if (product > 1) out.products.push_back(product);
    return out;
  }();
  return groups;
}

// False iff the candidate shares a factor with some odd prime < 2^16.
// Requires an odd candidate with more than 32 bits.
bool passesSmallPrimeSieve(const BigUInt& candidate) {
  const SieveGroups& sieve = smallPrimeSieve();
  for (std::uint64_t product : sieve.products) {
    std::uint64_t r = candidate.modU64(product);
    if (std::gcd(r, product) != 1) return false;
  }
  return true;
}

}  // namespace

bool isProbablePrime(const BigUInt& candidate, Rng& rng, int rounds) {
  if (candidate < BigUInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (candidate == BigUInt{p}) return true;
    if (candidate.modU32(p) == 0) return false;
  }
  // candidate is odd and > 251 here.
  return millerRabinIsPrime(candidate, rng, rounds);
}

BigUInt findPrimeInRange(const BigUInt& lo, const BigUInt& hi, Rng& rng) {
  if (hi < lo) throw std::invalid_argument("findPrimeInRange: empty range");
  BigUInt span = hi - lo + BigUInt{1};
  // By the prime number theorem a random value near x is prime with
  // probability ~ 1/ln(x); budget generously.
  const std::size_t bits = hi.bitLength();
  const std::size_t maxAttempts = 400 + 60 * bits;
  for (std::size_t attempt = 0; attempt < maxAttempts; ++attempt) {
    BigUInt candidate = lo + rng.nextBigBelow(span);
    if (!candidate.isOdd()) {
      if (candidate + BigUInt{1} > hi) continue;
      candidate += BigUInt{1};
    }
    if (isProbablePrime(candidate, rng)) return candidate;
  }
  throw std::runtime_error("findPrimeInRange: attempt budget exhausted");
}

BigUInt findPrimeInRangeSieved(const BigUInt& lo, const BigUInt& hi, Rng& rng) {
  if (hi < lo) throw std::invalid_argument("findPrimeInRangeSieved: empty range");
  BigUInt span = hi - lo + BigUInt{1};
  const std::size_t bits = hi.bitLength();
  const std::size_t maxAttempts = 400 + 60 * bits;
  for (std::size_t attempt = 0; attempt < maxAttempts; ++attempt) {
    BigUInt candidate = lo + rng.nextBigBelow(span);
    if (!candidate.isOdd()) {
      if (candidate + BigUInt{1} > hi) continue;
      candidate += BigUInt{1};
    }
    if (candidate.bitLength() <= 32) {
      // Too small for the sieve's "not itself a sieved prime" precondition.
      if (isProbablePrime(candidate, rng)) return candidate;
      continue;
    }
    if (!passesSmallPrimeSieve(candidate)) continue;
    if (millerRabinIsPrime(candidate, rng, 24)) return candidate;
  }
  throw std::runtime_error("findPrimeInRangeSieved: attempt budget exhausted");
}

BigUInt findPrimeWithBits(std::size_t bits, Rng& rng) {
  if (bits < 2) throw std::invalid_argument("findPrimeWithBits: need >= 2 bits");
  BigUInt lo = BigUInt{1} << (bits - 1);
  BigUInt hi = (BigUInt{1} << bits) - BigUInt{1};
  return findPrimeInRange(lo, hi, rng);
}

// --- Memoized prime search -----------------------------------------------

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Fold a BigUInt into a running 64-bit digest, bit-length first so windows
// with shared low bits stay distinct.
std::uint64_t foldBig(std::uint64_t acc, const BigUInt& value) {
  acc = mix64(acc ^ value.bitLength());
  const std::size_t bits = value.bitLength();
  for (std::size_t base = 0; base < bits; base += 64) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 64 && base + i < bits; ++i) {
      if (value.bit(base + i)) word |= (1ull << i);
    }
    acc = mix64(acc ^ word);
  }
  return acc;
}

// One memoized window. `done` flips exactly once, under `lock`, after
// `value` is written; single-flight is the searching/waiting split below.
struct PrimeCacheEntry {
  std::mutex lock;
  std::condition_variable ready;
  bool done = false;
  BigUInt value;
};

struct PrimeCacheState {
  std::mutex tableLock;
  std::map<std::pair<BigUInt, BigUInt>, std::shared_ptr<PrimeCacheEntry>> table;
  std::atomic<std::size_t> searches{0};
};

PrimeCacheState& primeCacheState() {
  static PrimeCacheState state;
  return state;
}

}  // namespace

std::uint64_t primeSearchSeed(const BigUInt& lo, const BigUInt& hi) {
  std::uint64_t acc = 0x9E3779B97F4A7C15ull;
  acc = foldBig(acc, lo);
  acc = foldBig(acc, hi);
  return mix64(acc);
}

BigUInt cachedPrimeInRange(const BigUInt& lo, const BigUInt& hi) {
  if (hi < lo) throw std::invalid_argument("cachedPrimeInRange: empty range");
  PrimeCacheState& state = primeCacheState();

  std::shared_ptr<PrimeCacheEntry> entry;
  bool firstUser = false;
  {
    std::lock_guard<std::mutex> guard(state.tableLock);
    auto [it, inserted] =
        state.table.try_emplace(std::make_pair(lo, hi), nullptr);
    if (inserted) {
      it->second = std::make_shared<PrimeCacheEntry>();
      firstUser = true;
    }
    entry = it->second;
  }

  if (firstUser) {
    // Single flight: this thread performs the one search for the window.
    // The search seed depends only on the window, so the memoized prime is
    // identical to a cold search with the same derived Rng. Windows below 64
    // bits keep the seed search verbatim (their cached primes are pinned by
    // committed experiment tables); big windows — new acceptance tiers —
    // take the sieve-prefiltered searcher, whose Rng interleaving differs
    // (rejected candidates never draw witness bases).
    Rng rng(primeSearchSeed(lo, hi));
    BigUInt prime = hi.bitLength() >= 64 ? findPrimeInRangeSieved(lo, hi, rng)
                                         : findPrimeInRange(lo, hi, rng);
    state.searches.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(entry->lock);
    entry->value = std::move(prime);
    entry->done = true;
    entry->ready.notify_all();
    return entry->value;
  }

  std::unique_lock<std::mutex> guard(entry->lock);
  entry->ready.wait(guard, [&] { return entry->done; });
  return entry->value;
}

BigUInt cachedPrimeWithBits(std::size_t bits) {
  if (bits < 2) throw std::invalid_argument("cachedPrimeWithBits: need >= 2 bits");
  BigUInt lo = BigUInt{1} << (bits - 1);
  BigUInt hi = (BigUInt{1} << bits) - BigUInt{1};
  return cachedPrimeInRange(lo, hi);
}

std::size_t primeCacheSearchCount() {
  return primeCacheState().searches.load(std::memory_order_relaxed);
}

void primeCacheResetForTests() {
  PrimeCacheState& state = primeCacheState();
  std::lock_guard<std::mutex> guard(state.tableLock);
  state.table.clear();
  state.searches.store(0, std::memory_order_relaxed);
}

}  // namespace dip::util
