// Bump-pointer arena for hot-loop scratch with stable reuse semantics.
//
// The batch hash engine and the trial workers rebuild the same flat tables
// (power tables, row bases, staging spans) thousands of times per run. A
// general-purpose heap pays malloc/free per rebuild and scatters the tables
// across the address space; the arena instead carves aligned slices out of
// chained blocks and recycles the whole region with one reset() call:
//
//   - allocate(bytes, align) bump-allocates from the current block, chaining
//     a new block (geometric growth, never smaller than the request) when
//     the current one is exhausted.
//   - reset() rewinds every block without releasing memory, so a
//     reset-then-reallocate sequence with identical request sizes returns
//     identical pointers — the batch evaluator relies on this to keep table
//     pointers stable across rebinds of the same shape.
//   - Under AddressSanitizer the unused tail of every block is poisoned and
//     each allocation unpoisons exactly its slice, so a stale pointer into a
//     reset() region is a diagnosable ASan error, not silent reuse.
//
// The arena never runs destructors: only trivially-destructible payloads
// belong here (limbs, u64 lanes, index spans). Not thread-safe; use one
// arena per worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dip::util {

class Arena {
 public:
  // First block size; later blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kDefaultBlockBytes = 1 << 12;
  static constexpr std::size_t kMaxBlockBytes = 1 << 22;

  explicit Arena(std::size_t firstBlockBytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // An aligned slice of `bytes` bytes. `align` must be a power of two no
  // larger than alignof(std::max_align_t). bytes == 0 returns a distinct
  // valid pointer (no two live zero-byte slices alias a payload).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  // count objects of trivially-destructible T, zero-initialized.
  template <typename T>
  T* allocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    T* out = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) out[i] = T{};
    return out;
  }

  // Rewinds all blocks, keeping their storage. Previously returned pointers
  // become invalid (and poisoned under ASan); an identical allocation
  // sequence afterwards reproduces identical addresses.
  void reset();

  // Observability (growth-boundary and reuse tests).
  std::size_t bytesInUse() const { return bytesInUse_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t blockCount() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& growFor(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // Index of the block allocations come from.
  std::size_t firstBlockBytes_;
  std::size_t bytesInUse_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace dip::util
