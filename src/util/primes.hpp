// Primality testing and prime search.
//
// The paper's hash family (Theorem 3.2) is parameterized by a prime p;
// Protocol 1 uses p in [10 n^3, 100 n^3], Protocol 2 uses
// p in [10 n^(n+2), 100 n^(n+2)] (whose existence the paper gets from
// Bertrand's postulate), and the GNI protocol's eps-API hash needs a prime
// field of ~ log2(n!) + O(log n) bits. findPrimeInRange performs a
// randomized search with Miller-Rabin certification.
#pragma once

#include <cstdint>

#include "util/biguint.hpp"
#include "util/rng.hpp"

namespace dip::util {

// Miller-Rabin probabilistic primality test. Error probability at most
// 4^-rounds for composites; always correct for primes.
bool isProbablePrime(const BigUInt& candidate, Rng& rng, int rounds = 24);

// Finds a (probable) prime in [lo, hi]; throws std::runtime_error if the
// randomized search exhausts its attempt budget (essentially impossible for
// ranges [x, 10x] by the prime number theorem).
BigUInt findPrimeInRange(const BigUInt& lo, const BigUInt& hi, Rng& rng);

// Finds a (probable) prime with exactly `bits` bits (top bit set).
BigUInt findPrimeWithBits(std::size_t bits, Rng& rng);

}  // namespace dip::util
