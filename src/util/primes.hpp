// Primality testing and prime search.
//
// The paper's hash family (Theorem 3.2) is parameterized by a prime p;
// Protocol 1 uses p in [10 n^3, 100 n^3], Protocol 2 uses
// p in [10 n^(n+2), 100 n^(n+2)] (whose existence the paper gets from
// Bertrand's postulate), and the GNI protocol's eps-API hash needs a prime
// field of ~ log2(n!) + O(log n) bits. findPrimeInRange performs a
// randomized search with Miller-Rabin certification.
#pragma once

#include <cstdint>

#include "util/biguint.hpp"
#include "util/rng.hpp"

namespace dip::util {

// Miller-Rabin probabilistic primality test. Error probability at most
// 4^-rounds for composites; always correct for primes.
bool isProbablePrime(const BigUInt& candidate, Rng& rng, int rounds = 24);

// Finds a (probable) prime in [lo, hi]; throws std::runtime_error if the
// randomized search exhausts its attempt budget (essentially impossible for
// ranges [x, 10x] by the prime number theorem).
BigUInt findPrimeInRange(const BigUInt& lo, const BigUInt& hi, Rng& rng);

// Like findPrimeInRange, but prefilters each candidate through a packed
// small-prime sieve (all odd primes < 2^16, folded into 64-bit products; one
// modU64 + gcd pass per product) before any Miller-Rabin witness round.
// Faster for big windows, but consumes the Rng differently from
// findPrimeInRange (sieve-rejected candidates never draw witness bases), so
// the two searchers find different primes for the same window and seed.
BigUInt findPrimeInRangeSieved(const BigUInt& lo, const BigUInt& hi, Rng& rng);

// Finds a (probable) prime with exactly `bits` bits (top bit set).
BigUInt findPrimeWithBits(std::size_t bits, Rng& rng);

// --- Memoized prime search -----------------------------------------------
//
// Protocol families re-derive a prime for the same window [lo, hi] (e.g.
// [10 n^(n+2), 100 n^(n+2)]) on every construction; under the trial engine
// many workers would otherwise race to repeat the identical Miller-Rabin
// search. The cache below memoizes one prime per window for the whole
// process, with single-flight locking: concurrent first-users of a window
// block on the one thread performing the search.
//
// Determinism contract: the cached prime for a window is a pure function of
// (lo, hi) — the search runs on Rng(primeSearchSeed(lo, hi)), never on a
// caller's stream — so results cannot depend on which trial or thread asked
// first, and a cold search with the same derived seed reproduces the cached
// value exactly. Windows whose hi is below 64 bits reproduce a cold
// findPrimeInRange; wider windows (the new big-prime acceptance tiers) use
// findPrimeInRangeSieved.

// The seed the cache derives for a window (exposed so tests can reproduce
// the cold search bit-for-bit).
std::uint64_t primeSearchSeed(const BigUInt& lo, const BigUInt& hi);

// Memoized equivalents of findPrimeInRange / findPrimeWithBits.
BigUInt cachedPrimeInRange(const BigUInt& lo, const BigUInt& hi);
BigUInt cachedPrimeWithBits(std::size_t bits);

// Observability hooks for tests: how many real window searches ran since
// process start (or the last reset), and a test-only reset that drops every
// memoized window.
std::size_t primeCacheSearchCount();
void primeCacheResetForTests();

}  // namespace dip::util
