// Exact-bit message serialization.
//
// The complexity measure of the paper is the number of BITS each node
// exchanges with the prover. Every protocol message in this library is
// encoded through BitWriter/BitReader so transcripts report the true
// encoded size: node identifiers cost ceil(log2 n) bits, a hash value in
// [p] costs ceil(log2 p) bits, etc.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/biguint.hpp"

namespace dip::util {

// Writers come in two storage flavors sharing one write path: the default
// heap-vector backend, and an arena backend (construct with an Arena) whose
// byte buffer bump-allocates from the caller's arena — the per-round audit
// encoders use this so a trial's wire encodings cost no heap traffic and
// vanish with the worker's per-trial reset(). An arena-backed writer must
// not be written to after the arena resets.
class BitWriter {
 public:
  BitWriter() = default;
  explicit BitWriter(Arena& arena) : arena_(&arena) {}

  void writeBit(bool bit);
  // Writes the low `width` bits of value, most-significant bit first.
  // Requires width <= 64 and value < 2^width.
  void writeUInt(std::uint64_t value, unsigned width);
  // Writes exactly `width` bits of a BigUInt (must satisfy value < 2^width).
  void writeBig(const BigUInt& value, std::size_t width);
  // Variable-length unsigned (LEB128-style, 7 data bits + continuation bit).
  void writeVarUInt(std::uint64_t value);

  std::size_t bitCount() const { return bitCount_; }
  std::span<const std::uint8_t> bytes() const {
    return {data(), (bitCount_ + 7) / 8};
  }

 private:
  const std::uint8_t* data() const {
    return arena_ ? arenaData_ : heapBytes_.data();
  }
  // Appends one zero byte, growing the backing storage.
  void pushZeroByte();

  std::vector<std::uint8_t> heapBytes_;  // Heap backend (arena_ == nullptr).
  Arena* arena_ = nullptr;               // Arena backend otherwise.
  std::uint8_t* arenaData_ = nullptr;
  std::size_t arenaCapacity_ = 0;
  std::size_t bitCount_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes, std::size_t bitCount);
  explicit BitReader(const BitWriter& writer)
      : BitReader(writer.bytes(), writer.bitCount()) {}

  bool readBit();
  std::uint64_t readUInt(unsigned width);
  BigUInt readBig(std::size_t width);
  std::uint64_t readVarUInt();

  std::size_t bitsRemaining() const { return bitCount_ - position_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bitCount_;
  std::size_t position_ = 0;
};

// Bits needed to encode any value in [0, count), at least 1.
unsigned bitsFor(std::uint64_t count);

}  // namespace dip::util
