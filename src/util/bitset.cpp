#include "util/bitset.hpp"

#include <stdexcept>

namespace dip::util {

DynBitset::DynBitset(std::size_t size) : size_(size) {
  if (!small()) heap_.assign(wordCount(), 0);
}

bool DynBitset::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("DynBitset::test: index out of range");
  return (words()[i / 64] >> (i % 64)) & 1ull;
}

void DynBitset::set(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("DynBitset::set: index out of range");
  if (value) {
    words()[i / 64] |= 1ull << (i % 64);
  } else {
    words()[i / 64] &= ~(1ull << (i % 64));
  }
}

void DynBitset::clearAll() {
  std::uint64_t* w = words();
  for (std::size_t i = 0; i < wordCount(); ++i) w[i] = 0;
}

std::size_t DynBitset::count() const {
  const std::uint64_t* w = words();
  std::size_t total = 0;
  for (std::size_t i = 0; i < wordCount(); ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

bool DynBitset::any() const {
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < wordCount(); ++i) {
    if (w[i]) return true;
  }
  return false;
}

DynBitset& DynBitset::operator^=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  std::uint64_t* w = words();
  const std::uint64_t* o = other.words();
  for (std::size_t i = 0; i < wordCount(); ++i) w[i] ^= o[i];
  return *this;
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  std::uint64_t* w = words();
  const std::uint64_t* o = other.words();
  for (std::size_t i = 0; i < wordCount(); ++i) w[i] |= o[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  std::uint64_t* w = words();
  const std::uint64_t* o = other.words();
  for (std::size_t i = 0; i < wordCount(); ++i) w[i] &= o[i];
  return *this;
}

bool DynBitset::intersects(const DynBitset& other) const {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  const std::uint64_t* w = words();
  const std::uint64_t* o = other.words();
  for (std::size_t i = 0; i < wordCount(); ++i) {
    if (w[i] & o[i]) return true;
  }
  return false;
}

std::size_t DynBitset::firstSet() const {
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < wordCount(); ++i) {
    if (w[i]) return i * 64 + static_cast<unsigned>(__builtin_ctzll(w[i]));
  }
  return size_;
}

std::size_t DynBitset::hashValue() const {
  std::size_t h = size_ * 0x9E3779B97F4A7C15ull;
  const std::uint64_t* w = words();
  for (std::size_t i = 0; i < wordCount(); ++i) {
    h ^= w[i] + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace dip::util
