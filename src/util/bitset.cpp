#include "util/bitset.hpp"

#include <stdexcept>

namespace dip::util {

DynBitset::DynBitset(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

bool DynBitset::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("DynBitset::test: index out of range");
  return (words_[i / 64] >> (i % 64)) & 1ull;
}

void DynBitset::set(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("DynBitset::set: index out of range");
  if (value) {
    words_[i / 64] |= 1ull << (i % 64);
  } else {
    words_[i / 64] &= ~(1ull << (i % 64));
  }
}

void DynBitset::clearAll() {
  for (auto& word : words_) word = 0;
}

std::size_t DynBitset::count() const {
  std::size_t total = 0;
  for (auto word : words_) total += static_cast<std::size_t>(__builtin_popcountll(word));
  return total;
}

bool DynBitset::any() const {
  for (auto word : words_) {
    if (word) return true;
  }
  return false;
}

DynBitset& DynBitset::operator^=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

bool DynBitset::intersects(const DynBitset& other) const {
  if (size_ != other.size_) throw std::invalid_argument("DynBitset: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::size_t DynBitset::firstSet() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w]) return w * 64 + static_cast<unsigned>(__builtin_ctzll(words_[w]));
  }
  return size_;
}

std::size_t DynBitset::hashValue() const {
  std::size_t h = size_ * 0x9E3779B97F4A7C15ull;
  for (auto word : words_) {
    h ^= word + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace dip::util
