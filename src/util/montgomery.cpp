#include "util/montgomery.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>

namespace dip::util {

namespace {

using Limb = BigUInt::Limb;
using DLimb = BigUInt::DLimb;
constexpr unsigned kLimbBits = BigUInt::kLimbBits;

// Inverse of an odd limb modulo 2^kLimbBits, by Newton iteration
// (x -> x (2 - a x) doubles the number of correct low bits each step;
// x = a is already correct mod 8, so six steps cover 64 bits with margin).
Limb inverseModLimbBase(Limb odd) {
  Limb x = odd;
  for (int iteration = 0; iteration < 6; ++iteration) {
    x *= static_cast<Limb>(2) - odd * x;
  }
  return x;
}

std::vector<Limb> paddedWords(const BigUInt& x, std::size_t k) {
  std::vector<Limb> out(k, 0);
  const auto& words = x.words();
  std::copy(words.begin(), words.end(), out.begin());
  return out;
}

// a <=> b over exactly k limbs.
int compareRaw(const Limb* a, const Limb* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// dst -= m over exactly k limbs (any final borrow is absorbed by the
// caller's carry limb).
void subModulusRaw(Limb* dst, const Limb* m, std::size_t k) {
  Limb borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    Limb t1 = dst[i] - m[i];
    Limb b1 = t1 > dst[i];
    Limb t2 = t1 - borrow;
    Limb b2 = t2 > t1;
    dst[i] = t2;
    borrow = b1 | b2;
  }
}

// CIOS (coarsely integrated operand scanning) Montgomery multiply, base
// 2^kLimbBits: t <- a * b * B^-k mod m, with t left in [0, 2m) before the
// final conditional subtract. Two things this shape buys that measurably
// matter on the baseline container:
//  - The __restrict qualifiers: t is a caller-provided scratch that never
//    aliases the operands or the modulus, so the compiler can hoist the
//    b[j]/m[j] loads out of the carry chains.
//  - kFixed: when nonzero it is the compile-time limb count, and the hot
//    modulus widths (dispatched in montMulRaw) get fully static trip counts
//    and addressing -- worth ~20% over the runtime-k form at 16 limbs.
//    kFixed == 0 falls back to the runtime count in kRuntime.
// The i = 0 row is peeled: t starts at zero, so the first product row needs
// no accumulator loads, which also replaces the explicit zero-fill.
// (A BMI2/mulx target_clones variant and a fused FIOS pass were both tried
// and measured slower than this plain unrolled form, so the kernel stays
// single-version and two-pass.)
template <std::size_t kFixed>
void ciosKernelImpl(const Limb* __restrict a, const Limb* __restrict b,
                    Limb* __restrict t, const Limb* __restrict m,
                    const Limb mPrime, const std::size_t kRuntime) {
  const std::size_t k = kFixed != 0 ? kFixed : kRuntime;

  // Row i = 0: t = a_0 * b, then one reduction pass.
  {
    const Limb a0 = a[0];
    Limb carry = 0;
#pragma GCC unroll 8
    for (std::size_t j = 0; j < k; ++j) {
      DLimb cur = static_cast<DLimb>(a0) * b[j] + carry;
      t[j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    t[k] = carry;

    const Limb u = t[0] * mPrime;
    DLimb cur0 = static_cast<DLimb>(t[0]) + static_cast<DLimb>(u) * m[0];
    carry = static_cast<Limb>(cur0 >> kLimbBits);  // Low word is zero by construction.
#pragma GCC unroll 8
    for (std::size_t j = 1; j < k; ++j) {
      DLimb cur = static_cast<DLimb>(t[j]) + static_cast<DLimb>(u) * m[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    DLimb tail = static_cast<DLimb>(t[k]) + carry;
    t[k - 1] = static_cast<Limb>(tail);
    t[k] = static_cast<Limb>(tail >> kLimbBits);
    t[k + 1] = 0;
  }

  for (std::size_t i = 1; i < k; ++i) {
    const Limb ai = a[i];

    // t += a_i * b.
    Limb carry = 0;
#pragma GCC unroll 8
    for (std::size_t j = 0; j < k; ++j) {
      DLimb cur = static_cast<DLimb>(t[j]) + static_cast<DLimb>(ai) * b[j] + carry;
      t[j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    DLimb top = static_cast<DLimb>(t[k]) + carry;
    t[k] = static_cast<Limb>(top);
    t[k + 1] = static_cast<Limb>(top >> kLimbBits);

    // u = t[0] * mPrime mod B; t += u * m; then shift one limb down.
    const Limb u = t[0] * mPrime;
    DLimb cur0 = static_cast<DLimb>(t[0]) + static_cast<DLimb>(u) * m[0];
    carry = static_cast<Limb>(cur0 >> kLimbBits);  // Low word is zero by construction.
#pragma GCC unroll 8
    for (std::size_t j = 1; j < k; ++j) {
      DLimb cur = static_cast<DLimb>(t[j]) + static_cast<DLimb>(u) * m[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    DLimb tail = static_cast<DLimb>(t[k]) + carry;
    t[k - 1] = static_cast<Limb>(tail);
    t[k] = t[k + 1] + static_cast<Limb>(tail >> kLimbBits);
    t[k + 1] = 0;
  }

  // Result is in t[0..k] with t[k] in {0, 1} and value < 2m.
  if (t[k] != 0 || compareRaw(t, m, k) >= 0) {
    subModulusRaw(t, m, k);
  }
  t[k] = 0;
}

}  // namespace

MontgomeryContext::MontgomeryContext(BigUInt modulus) : m_(std::move(modulus)) {
  if (!m_.isOdd() || m_ < BigUInt{3}) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and >= 3");
  }
  numLimbs_ = m_.words().size();
  mPrime_ = static_cast<Limb>(0) - inverseModLimbBase(m_.words()[0]);
  BigUInt r = BigUInt{1} << (kLimbBits * numLimbs_);
  BigUInt rModM = r % m_;
  BigUInt rSquared = (rModM * rModM) % m_;
  one_.limbs_ = paddedWords(rModM, numLimbs_);
  rSquared_.limbs_ = paddedWords(rSquared, numLimbs_);
  zero_.limbs_.assign(numLimbs_, 0);
  plainOne_.assign(numLimbs_, 0);
  plainOne_[0] = 1;
}

void MontgomeryContext::montMulRaw(const Limb* __restrict a, const Limb* __restrict b,
                                   Limb* __restrict t) const {
  // Dispatch the widths the protocols actually hit to fixed-k instances:
  // k <= 2 covers every n^(n+2) hash prime up to n = 16, k = 4/8/16 the
  // 256/512/1024-bit Miller-Rabin and benchmark operands. Anything else
  // (e.g. 4096-bit stress sizes) takes the runtime-k fallback.
  const Limb* m = m_.words().data();
  switch (numLimbs_) {
    case 1:  ciosKernelImpl<1>(a, b, t, m, mPrime_, 1); break;
    case 2:  ciosKernelImpl<2>(a, b, t, m, mPrime_, 2); break;
    case 3:  ciosKernelImpl<3>(a, b, t, m, mPrime_, 3); break;
    case 4:  ciosKernelImpl<4>(a, b, t, m, mPrime_, 4); break;
    case 8:  ciosKernelImpl<8>(a, b, t, m, mPrime_, 8); break;
    case 16: ciosKernelImpl<16>(a, b, t, m, mPrime_, 16); break;
    default: ciosKernelImpl<0>(a, b, t, m, mPrime_, numLimbs_); break;
  }
}

const MontgomeryContext::Limb* MontgomeryContext::stagePlain(const BigUInt& x,
                                                             Scratch& scratch) const {
  if (scratch.stage.size() < numLimbs_) scratch.stage.resize(numLimbs_);
  std::fill(scratch.stage.begin(), scratch.stage.begin() + numLimbs_, 0);
  if (x < m_) {
    const auto& words = x.words();
    std::copy(words.begin(), words.end(), scratch.stage.begin());
  } else {
    BigUInt reduced = x % m_;
    const auto& words = reduced.words();
    std::copy(words.begin(), words.end(), scratch.stage.begin());
  }
  return scratch.stage.data();
}

void MontgomeryContext::toValue(const BigUInt& x, MontgomeryValue& out,
                                Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  const Limb* staged = stagePlain(x, scratch);
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  montMulRaw(staged, rSquared_.limbs_.data(), scratch.t.data());
  out.limbs_.resize(k);
  std::copy(scratch.t.begin(), scratch.t.begin() + k, out.limbs_.begin());
}

MontgomeryValue MontgomeryContext::toValue(const BigUInt& x) const {
  thread_local Scratch scratch;
  MontgomeryValue out;
  toValue(x, out, scratch);
  return out;
}

BigUInt MontgomeryContext::fromValue(const MontgomeryValue& v) const {
  thread_local std::vector<Limb> t;
  const std::size_t k = numLimbs_;
  if (t.size() < k + 2) t.resize(k + 2);
  montMulRaw(v.limbs_.data(), plainOne_.data(), t.data());
  return BigUInt::fromWords(std::vector<Limb>(t.begin(), t.begin() + k));
}

void MontgomeryContext::mulValue(const MontgomeryValue& a, const MontgomeryValue& b,
                                 MontgomeryValue& out, Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  montMulRaw(a.limbs_.data(), b.limbs_.data(), scratch.t.data());
  out.limbs_.resize(k);
  std::copy(scratch.t.begin(), scratch.t.begin() + k, out.limbs_.begin());
}

void MontgomeryContext::addValue(const MontgomeryValue& a, const MontgomeryValue& b,
                                 MontgomeryValue& out) const {
  const std::size_t k = numLimbs_;
  const Limb* m = m_.words().data();
  out.limbs_.resize(k);
  const Limb* ap = a.limbs_.data();
  const Limb* bp = b.limbs_.data();
  Limb* op = out.limbs_.data();
  Limb carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    DLimb cur = static_cast<DLimb>(ap[i]) + bp[i] + carry;
    op[i] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> kLimbBits);
  }
  if (carry || compareRaw(op, m, k) >= 0) subModulusRaw(op, m, k);
}

void MontgomeryContext::subValue(const MontgomeryValue& a, const MontgomeryValue& b,
                                 MontgomeryValue& out) const {
  const std::size_t k = numLimbs_;
  const Limb* m = m_.words().data();
  out.limbs_.resize(k);
  const Limb* ap = a.limbs_.data();
  const Limb* bp = b.limbs_.data();
  Limb* op = out.limbs_.data();
  Limb borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    Limb t1 = ap[i] - bp[i];
    Limb b1 = t1 > ap[i];
    Limb t2 = t1 - borrow;
    Limb b2 = t2 > t1;
    op[i] = t2;
    borrow = b1 | b2;
  }
  if (borrow) {
    // Wrapped below zero: add m back (the final carry cancels the borrow).
    Limb carry = 0;
    for (std::size_t i = 0; i < k; ++i) {
      DLimb cur = static_cast<DLimb>(op[i]) + m[i] + carry;
      op[i] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
  }
}

void MontgomeryContext::mulRaw(const Limb* a, const Limb* b, Limb* out,
                               Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  montMulRaw(a, b, scratch.t.data());
  std::copy(scratch.t.begin(), scratch.t.begin() + k, out);
}

void MontgomeryContext::addRaw(const Limb* a, const Limb* b, Limb* out) const {
  const std::size_t k = numLimbs_;
  const Limb* m = m_.words().data();
  Limb carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    DLimb cur = static_cast<DLimb>(a[i]) + b[i] + carry;
    out[i] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> kLimbBits);
  }
  if (carry || compareRaw(out, m, k) >= 0) subModulusRaw(out, m, k);
}

void MontgomeryContext::valueToRaw(const MontgomeryValue& v, Limb* out) const {
  std::copy(v.limbs_.begin(), v.limbs_.end(), out);
}

BigUInt MontgomeryContext::rawToPlain(const Limb* v) const {
  thread_local std::vector<Limb> t;
  const std::size_t k = numLimbs_;
  if (t.size() < k + 2) t.resize(k + 2);
  montMulRaw(v, plainOne_.data(), t.data());
  return BigUInt::fromWords(std::vector<Limb>(t.begin(), t.begin() + k));
}

void MontgomeryContext::buildWindowTable(const Limb* base, unsigned wMax, Limb* table,
                                         Limb* t) const {
  const std::size_t k = numLimbs_;
  std::copy(one_.limbs_.begin(), one_.limbs_.end(), table);
  if (wMax >= 1) std::copy(base, base + k, table + k);
  for (unsigned w = 2; w <= wMax; ++w) {
    montMulRaw(table + (w - 1) * k, table + k, t);
    std::copy(t, t + k, table + w * k);
  }
}

void MontgomeryContext::powWithTable(const Limb* table, const BigUInt& exponent,
                                     MontgomeryValue& out, Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  const std::size_t bits = exponent.bitLength();
  if (bits == 0) {
    out.limbs_ = one_.limbs_;
    return;
  }
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  Limb* t = scratch.t.data();

  auto windowAt = [&](std::size_t w) {
    unsigned value = 0;
    for (unsigned b = 0; b < 4; ++b) {
      std::size_t idx = w * 4 + b;
      if (idx < bits && exponent.bit(idx)) value |= 1u << b;
    }
    return value;
  };

  const std::size_t nWindows = (bits + 3) / 4;
  out.limbs_.resize(k);
  const unsigned topWindow = windowAt(nWindows - 1);
  std::copy(table + topWindow * k, table + (topWindow + 1) * k, out.limbs_.begin());
  for (std::size_t w = nWindows - 1; w-- > 0;) {
    for (int square = 0; square < 4; ++square) {
      montMulRaw(out.limbs_.data(), out.limbs_.data(), t);
      std::copy(t, t + k, out.limbs_.begin());
    }
    const unsigned value = windowAt(w);
    if (value) {
      montMulRaw(out.limbs_.data(), table + value * k, t);
      std::copy(t, t + k, out.limbs_.begin());
    }
  }
}

void MontgomeryContext::powValue(const MontgomeryValue& base, const BigUInt& exponent,
                                 MontgomeryValue& out, Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  const std::size_t bits = exponent.bitLength();
  if (bits == 0) {
    out.limbs_ = one_.limbs_;
    return;
  }
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  if (scratch.table.size() < 16 * k) scratch.table.resize(16 * k);
  // table[w] = base^w in-domain; small exponents only need a prefix.
  const unsigned wMax = bits >= 4 ? 15u : static_cast<unsigned>((1u << bits) - 1);
  buildWindowTable(base.limbs_.data(), wMax, scratch.table.data(), scratch.t.data());
  powWithTable(scratch.table.data(), exponent, out, scratch);
}

void MontgomeryContext::prepareWindow(const MontgomeryValue& base, PowWindow& window,
                                      Scratch& scratch) const {
  const std::size_t k = numLimbs_;
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  window.table.resize(16 * k);
  buildWindowTable(base.limbs_.data(), 15, window.table.data(), scratch.t.data());
  window.limbs = k;
}

void MontgomeryContext::powValueWindowed(const PowWindow& window,
                                         const BigUInt& exponent, MontgomeryValue& out,
                                         Scratch& scratch) const {
  if (window.limbs != numLimbs_) {
    throw std::logic_error("powValueWindowed: window not built for this context");
  }
  powWithTable(window.table.data(), exponent, out, scratch);
}

BigUInt MontgomeryContext::mulMod(const BigUInt& a, const BigUInt& b) const {
  thread_local Scratch scratch;
  thread_local MontgomeryValue bMont;
  const std::size_t k = numLimbs_;
  // a * Mont(b) under one more REDC is a * b * R * R^-1 = a * b mod m: two
  // REDC passes total and no convert-out.
  toValue(b, bMont, scratch);
  const Limb* staged = stagePlain(a, scratch);
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  montMulRaw(staged, bMont.limbs_.data(), scratch.t.data());
  return BigUInt::fromWords(
      std::vector<Limb>(scratch.t.begin(), scratch.t.begin() + k));
}

BigUInt MontgomeryContext::powMod(const BigUInt& base, const BigUInt& exponent) const {
  thread_local Scratch scratch;
  thread_local MontgomeryValue baseMont;
  thread_local MontgomeryValue resultMont;
  toValue(base, baseMont, scratch);
  powValue(baseMont, exponent, resultMont, scratch);
  return fromValue(resultMont);
}

BigUInt MontgomeryContext::toMontgomery(const BigUInt& x) const {
  thread_local Scratch scratch;
  thread_local MontgomeryValue xMont;
  toValue(x, xMont, scratch);
  return BigUInt::fromWords(std::vector<Limb>(xMont.limbs_.begin(), xMont.limbs_.end()));
}

BigUInt MontgomeryContext::fromMontgomery(const BigUInt& x) const {
  thread_local Scratch scratch;
  const std::size_t k = numLimbs_;
  const Limb* staged = stagePlain(x, scratch);
  if (scratch.t.size() < k + 2) scratch.t.resize(k + 2);
  montMulRaw(staged, plainOne_.data(), scratch.t.data());
  return BigUInt::fromWords(
      std::vector<Limb>(scratch.t.begin(), scratch.t.begin() + k));
}

// --- BarrettContext -------------------------------------------------------

namespace {

// The low n limbs of x (x mod B^n).
BigUInt lowWords(const BigUInt& x, std::size_t n) {
  const auto& words = x.words();
  if (words.size() <= n) return x;
  return BigUInt::fromWords(std::vector<Limb>(words.begin(), words.begin() + n));
}

}  // namespace

BarrettContext::BarrettContext(BigUInt modulus) : m_(std::move(modulus)) {
  if (m_ < BigUInt{2}) {
    throw std::invalid_argument("BarrettContext: modulus must be >= 2");
  }
  k_ = m_.words().size();
  mu_ = (BigUInt{1} << (2 * k_ * kLimbBits)) / m_;
}

BigUInt BarrettContext::reduce(const BigUInt& x) const {
  if (x < m_) return x;
  // HAC 14.42 requires x < b^(2k); anything wider (an unreduced caller
  // input -- products of two reduced values always fit) would corrupt the
  // quotient estimate and turn the correction loop into ~b^k subtractions.
  if (x.words().size() > 2 * k_) return x % m_;
  // HAC Algorithm 14.42.
  BigUInt q = ((x >> ((k_ - 1) * kLimbBits)) * mu_) >> ((k_ + 1) * kLimbBits);
  BigUInt r1 = lowWords(x, k_ + 1);
  BigUInt r2 = lowWords(q * m_, k_ + 1);
  BigUInt r;
  if (r1 >= r2) {
    r = r1 - r2;
  } else {
    r = (BigUInt{1} << ((k_ + 1) * kLimbBits)) + r1 - r2;
  }
  while (r >= m_) r -= m_;  // At most two iterations.
  return r;
}

BigUInt BarrettContext::mulMod(const BigUInt& a, const BigUInt& b) const {
  return reduce(reduce(a) * reduce(b));
}

BigUInt BarrettContext::powMod(const BigUInt& base, const BigUInt& exponent) const {
  BigUInt result{1};
  BigUInt square = reduce(base);
  BigUInt product;
  const std::size_t bits = exponent.bitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) {
      product = result * square;
      result = reduce(product);
    }
    if (i + 1 < bits) {
      product = square * square;
      square = reduce(product);
    }
  }
  return result;
}

// --- Memoized Montgomery contexts ----------------------------------------

namespace {

// One memoized context. `done` flips exactly once, under `lock`, after
// `context` is written; single-flight is the building/waiting split below
// (same discipline as the prime cache in primes.cpp).
struct MontgomeryCacheEntry {
  std::mutex lock;
  std::condition_variable ready;
  bool done = false;
  std::shared_ptr<const MontgomeryContext> context;
};

struct MontgomeryCacheState {
  std::mutex tableLock;
  std::map<std::vector<Limb>, std::shared_ptr<MontgomeryCacheEntry>> table;
  std::atomic<std::size_t> builds{0};
};

MontgomeryCacheState& montgomeryCacheState() {
  static MontgomeryCacheState state;
  return state;
}

}  // namespace

std::shared_ptr<const MontgomeryContext> cachedMontgomeryContext(const BigUInt& modulus) {
  if (!modulus.isOdd() || modulus < BigUInt{3}) {
    throw std::invalid_argument(
        "cachedMontgomeryContext: modulus must be odd and >= 3");
  }
  MontgomeryCacheState& state = montgomeryCacheState();

  std::shared_ptr<MontgomeryCacheEntry> entry;
  bool firstUser = false;
  {
    std::lock_guard<std::mutex> guard(state.tableLock);
    auto [it, inserted] = state.table.try_emplace(modulus.words(), nullptr);
    if (inserted) {
      it->second = std::make_shared<MontgomeryCacheEntry>();
      firstUser = true;
    }
    entry = it->second;
  }

  if (firstUser) {
    // Single flight: this thread builds the one context for the modulus
    // (the modulus was validated above, so construction cannot throw and
    // strand the waiters).
    auto context = std::make_shared<const MontgomeryContext>(modulus);
    state.builds.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(entry->lock);
    entry->context = std::move(context);
    entry->done = true;
    entry->ready.notify_all();
    return entry->context;
  }

  std::unique_lock<std::mutex> guard(entry->lock);
  entry->ready.wait(guard, [&] { return entry->done; });
  return entry->context;
}

std::size_t montgomeryCacheBuildCount() {
  return montgomeryCacheState().builds.load(std::memory_order_relaxed);
}

void montgomeryCacheResetForTests() {
  MontgomeryCacheState& state = montgomeryCacheState();
  std::lock_guard<std::mutex> guard(state.tableLock);
  state.table.clear();
  state.builds.store(0, std::memory_order_relaxed);
}

}  // namespace dip::util
