#include "util/montgomery.hpp"

#include <stdexcept>

namespace dip::util {

namespace {

// Inverse of an odd 32-bit value modulo 2^32, by Newton iteration
// (x -> x (2 - a x) doubles the number of correct low bits each step).
std::uint32_t inverseMod2Pow32(std::uint32_t odd) {
  std::uint32_t x = odd;  // Correct to 5 bits (odd * odd = 1 mod 8... start).
  for (int iteration = 0; iteration < 5; ++iteration) {
    x *= 2u - odd * x;
  }
  return x;
}

}  // namespace

MontgomeryContext::MontgomeryContext(BigUInt modulus) : m_(std::move(modulus)) {
  if (!m_.isOdd() || m_ < BigUInt{3}) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and >= 3");
  }
  numLimbs_ = m_.limbs().size();
  mPrime_ = static_cast<std::uint32_t>(0u - inverseMod2Pow32(m_.limbs()[0]));
  BigUInt r = BigUInt{1} << (32 * numLimbs_);
  rModM_ = r % m_;
  rSquared_ = (rModM_ * rModM_) % m_;
}

BigUInt MontgomeryContext::montgomeryProduct(const BigUInt& a, const BigUInt& b) const {
  // CIOS (coarsely integrated operand scanning), base 2^32.
  const std::size_t k = numLimbs_;
  const auto& mLimbs = m_.limbs();
  const auto& aLimbs = a.limbs();
  const auto& bLimbs = b.limbs();

  std::vector<std::uint32_t> t(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t ai = i < aLimbs.size() ? aLimbs[i] : 0;

    // t += a_i * b.
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      std::uint64_t bj = j < bLimbs.size() ? bLimbs[j] : 0;
      std::uint64_t cur = static_cast<std::uint64_t>(t[j]) + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t top = static_cast<std::uint64_t>(t[k]) + carry;
    t[k] = static_cast<std::uint32_t>(top);
    t[k + 1] = static_cast<std::uint32_t>(top >> 32);

    // u = t[0] * mPrime mod 2^32; t += u * m; then shift one limb down.
    std::uint32_t u = t[0] * mPrime_;
    carry = 0;
    {
      std::uint64_t cur =
          static_cast<std::uint64_t>(t[0]) + static_cast<std::uint64_t>(u) * mLimbs[0];
      carry = cur >> 32;  // Low word is zero by construction.
    }
    for (std::size_t j = 1; j < k; ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(t[j]) +
                          static_cast<std::uint64_t>(u) * mLimbs[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t tail = static_cast<std::uint64_t>(t[k]) + carry;
    t[k - 1] = static_cast<std::uint32_t>(tail);
    t[k] = t[k + 1] + static_cast<std::uint32_t>(tail >> 32);
    t[k + 1] = 0;
  }

  t.resize(k + 1);
  BigUInt result = BigUInt::fromLimbs(std::move(t));
  if (result >= m_) result -= m_;
  return result;
}

BigUInt MontgomeryContext::toMontgomery(const BigUInt& x) const {
  return montgomeryProduct(x % m_, rSquared_);
}

BigUInt MontgomeryContext::fromMontgomery(const BigUInt& x) const {
  return montgomeryProduct(x, BigUInt{1});
}

BigUInt MontgomeryContext::mulMod(const BigUInt& a, const BigUInt& b) const {
  return fromMontgomery(montgomeryProduct(toMontgomery(a), toMontgomery(b)));
}

BigUInt MontgomeryContext::powMod(const BigUInt& base, const BigUInt& exponent) const {
  BigUInt result = rModM_;  // 1 in Montgomery form.
  BigUInt square = toMontgomery(base);
  const std::size_t bits = exponent.bitLength();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = montgomeryProduct(result, square);
    if (i + 1 < bits) square = montgomeryProduct(square, square);
  }
  return fromMontgomery(result);
}

}  // namespace dip::util
