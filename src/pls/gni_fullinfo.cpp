#include "pls/gni_fullinfo.hpp"

#include "graph/isomorphism.hpp"

namespace dip::pls {

GniFullInfoAdvice GniFullInfo::honestAdvice(const graph::Graph& g0,
                                            const graph::Graph& g1) {
  GniFullInfoAdvice advice;
  for (graph::Vertex v = 0; v < g0.numVertices(); ++v) advice.g0Rows.push_back(g0.row(v));
  for (graph::Vertex v = 0; v < g1.numVertices(); ++v) advice.g1Rows.push_back(g1.row(v));
  return advice;
}

std::vector<bool> GniFullInfo::verify(const graph::Graph& g0,
                                      const std::vector<util::DynBitset>& input1Rows,
                                      const std::vector<GniFullInfoAdvice>& advice) {
  const std::size_t n = g0.numVertices();
  std::vector<bool> ok(n, true);
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniFullInfoAdvice& label = advice[v];
    if (label.g0Rows.size() != n || label.g1Rows.size() != n ||
        label.g0Rows[v] != g0.row(v) || label.g1Rows[v] != input1Rows[v]) {
      ok[v] = false;
      continue;
    }
    bool consistent = true;
    g0.row(v).forEachSet([&](std::size_t u) {
      if (!(advice[u] == label)) consistent = false;
    });
    if (!consistent) {
      ok[v] = false;
      continue;
    }
    // The node is computationally unbounded: rebuild both graphs from the
    // (endorsed) claimed rows and decide isomorphism outright. The claimed
    // rows must first describe valid adjacency matrices (symmetric, no
    // loops).
    graph::Graph claimed0(n);
    graph::Graph claimed1(n);
    bool wellFormed = true;
    for (graph::Vertex u = 0; u < n && wellFormed; ++u) {
      if (label.g0Rows[u].size() != n || label.g1Rows[u].size() != n ||
          label.g0Rows[u].test(u) || label.g1Rows[u].test(u)) {
        wellFormed = false;
        break;
      }
      label.g0Rows[u].forEachSet([&](std::size_t w) {
        if (!label.g0Rows[w].test(u)) wellFormed = false;
        if (w > u) claimed0.addEdge(u, static_cast<graph::Vertex>(w));
      });
      label.g1Rows[u].forEachSet([&](std::size_t w) {
        if (!label.g1Rows[w].test(u)) wellFormed = false;
        if (w > u) claimed1.addEdge(u, static_cast<graph::Vertex>(w));
      });
    }
    if (!wellFormed || graph::areIsomorphic(claimed0, claimed1)) ok[v] = false;
  }
  return ok;
}

bool GniFullInfo::accepts(const graph::Graph& g0,
                          const std::vector<util::DynBitset>& input1Rows,
                          const std::vector<GniFullInfoAdvice>& advice) {
  auto decisions = verify(g0, input1Rows, advice);
  for (bool d : decisions) {
    if (!d) return false;
  }
  return !decisions.empty();
}

}  // namespace dip::pls
