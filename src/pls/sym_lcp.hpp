// The Theta(n^2) locally checkable proof (LCP / proof-labeling scheme) for
// Graph Symmetry — the non-interactive "distributed NP" baseline.
//
// Goos and Suomela [17] show Sym has LCPs of size Theta(n^2) and that this
// is optimal (no interaction). The scheme implemented here is the standard
// upper bound: the prover gives EVERY node the full adjacency matrix, a
// permutation rho, and a witness vertex moved by rho. Each node then checks
// purely locally:
//   (a) its own row of the claimed matrix matches its actual neighborhood,
//   (b) its neighbors received identical advice (so on a connected graph
//       the claimed matrix/permutation are globally consistent),
//   (c) rho is a permutation, the witness is moved, and rho maps the
//       claimed matrix to itself.
// If every node accepts, the claimed matrix is the true one (each row is
// endorsed by its owner) and rho is a genuine non-trivial automorphism —
// the scheme is deterministic, with perfect completeness and soundness.
//
// Advice length per node: n^2 + n ceil(log2 n) + ceil(log2 n) bits. This is
// the quantity Theorems 1.1-1.2 beat exponentially with interaction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace dip::pls {

struct SymLcpAdvice {
  std::vector<util::DynBitset> matrixRows;  // Claimed adjacency rows (no loops).
  graph::Permutation rho;
  graph::Vertex witness = 0;  // Claimed vertex with rho(witness) != witness.

  bool operator==(const SymLcpAdvice& other) const = default;
};

class SymLcp {
 public:
  // Advice of the honest prover, or nullopt if the graph is not symmetric.
  static std::optional<SymLcpAdvice> honestAdvice(const graph::Graph& g);

  // Per-node decisions for (possibly adversarial) advice. advice[v] is the
  // label node v received; node v reads only its own label, its neighbors'
  // labels, and its own neighborhood.
  static std::vector<bool> verify(const graph::Graph& g,
                                  const std::vector<SymLcpAdvice>& advice);

  // All nodes accept?
  static bool accepts(const graph::Graph& g, const std::vector<SymLcpAdvice>& advice);

  static std::size_t adviceBitsPerNode(std::size_t n);
};

}  // namespace dip::pls
