// Randomized proof-labeling scheme (RPLS) for Symmetry — the Baruch-
// Fraigniaud-Patt-Shamir model [4] the paper contrasts with (Section 1.2).
//
// In an RPLS the prover still hands each node advice non-interactively, but
// the nodes' verification round may be RANDOMIZED. [4] shows this shrinks
// the verification-round communication exponentially: instead of comparing
// whole labels with each neighbor (n^2 bits over each edge for the Sym
// scheme), neighbors compare O(log n)-bit fingerprints of their labels.
//
// What it does NOT shrink — and the reason the paper's interactive model is
// incomparable — is the PROVER's communication: each node still receives
// the full Theta(n^2)-bit label. The paper charges prover communication;
// [4] does not. This implementation makes both costs explicit so E13 can
// put the three models side by side:
//     model     prover -> node        node -> node (verification)
//     LCP       Theta(n^2)            Theta(n^2) per edge
//     RPLS      Theta(n^2)            O(log n) per edge     [this file]
//     dMAM      O(log n)              O(log n) per edge     [Protocol 1]
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "hash/linear_hash.hpp"
#include "pls/sym_lcp.hpp"
#include "util/rng.hpp"

namespace dip::pls {

struct SymRplsCosts {
  std::size_t adviceBitsPerNode = 0;        // Prover -> node.
  std::size_t verificationBitsPerEdge = 0;  // Node -> neighbor, randomized round.
};

class SymRpls {
 public:
  // family: a linear hash family over dimension >= the encoded label size
  // (labels are hashed as bit vectors). Use makeRplsFamily below.
  explicit SymRpls(hash::LinearHashFamily family);

  // One randomized verification round over (possibly adversarial) advice:
  // every node draws a shared-with-neighbors fingerprint seed from rng (the
  // RPLS model gives nodes private randomness; fingerprints are exchanged,
  // so an edge's two endpoints compare under the SENDER's seed), then
  // checks (a) fingerprint equality with every neighbor, (b) its own row
  // endorsement, and (c) the automorphism property of its own label.
  std::vector<bool> verify(const graph::Graph& g,
                           const std::vector<SymLcpAdvice>& advice,
                           util::Rng& rng) const;

  bool accepts(const graph::Graph& g, const std::vector<SymLcpAdvice>& advice,
               util::Rng& rng) const;

  SymRplsCosts costs(std::size_t n) const;

  // Serializes a label to the bit vector that gets fingerprinted.
  static std::vector<bool> encodeLabel(const SymLcpAdvice& advice, std::size_t n);

 private:
  hash::LinearHashFamily family_;
};

// Family sized for n-node labels: dimension = label bits, prime ~ n^4 so
// per-edge fingerprints are O(log n) bits with collision prob <= 1/n.
SymRpls makeSymRpls(std::size_t n, util::Rng& rng);

}  // namespace dip::pls
