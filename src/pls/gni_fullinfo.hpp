// The trivial full-information non-interactive scheme for GNI.
//
// Without interaction, GNI requires Omega(n^2) bits of advice (the paper,
// end of Section 1.1.2, via the argument of [17]); the only known upper
// bound is the trivial one implemented here: give every node complete
// descriptions of both graphs, let each node endorse its own rows, check
// neighbor consistency, and have each (computationally unbounded) node
// verify non-isomorphism locally. This is the Theta(n^2) baseline that
// Theorem 1.5's O(n log n) dAMAM protocol is measured against.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace dip::pls {

struct GniFullInfoAdvice {
  std::vector<util::DynBitset> g0Rows;
  std::vector<util::DynBitset> g1Rows;

  bool operator==(const GniFullInfoAdvice& other) const = default;
};

class GniFullInfo {
 public:
  // The honest advice (always well-formed; verification rejects if the
  // graphs are in fact isomorphic).
  static GniFullInfoAdvice honestAdvice(const graph::Graph& g0, const graph::Graph& g1);

  // Per-node decisions. g0 is the network graph; input1Rows[v] is node v's
  // input row N_G1(v) (Definition 4's input convention).
  static std::vector<bool> verify(const graph::Graph& g0,
                                  const std::vector<util::DynBitset>& input1Rows,
                                  const std::vector<GniFullInfoAdvice>& advice);

  static bool accepts(const graph::Graph& g0,
                      const std::vector<util::DynBitset>& input1Rows,
                      const std::vector<GniFullInfoAdvice>& advice);

  static std::size_t adviceBitsPerNode(std::size_t n) { return 2 * n * n; }
};

}  // namespace dip::pls
