#include "pls/sym_rpls.hpp"

#include <stdexcept>

#include "hash/batch_eval.hpp"
#include "util/bitio.hpp"
#include "util/primes.hpp"

namespace dip::pls {

SymRpls::SymRpls(hash::LinearHashFamily family) : family_(std::move(family)) {}

std::vector<bool> SymRpls::encodeLabel(const SymLcpAdvice& advice, std::size_t n) {
  const unsigned idBits = util::bitsFor(n);
  std::vector<bool> bits;
  bits.reserve(n * n + n * idBits + idBits);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t w = 0; w < n; ++w) {
      bool bit = u < advice.matrixRows.size() && advice.matrixRows[u].size() == n &&
                 advice.matrixRows[u].test(w);
      bits.push_back(bit);
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    graph::Vertex image = u < advice.rho.size() ? advice.rho[u] : 0;
    for (unsigned bit = 0; bit < idBits; ++bit) bits.push_back((image >> bit) & 1u);
  }
  for (unsigned bit = 0; bit < idBits; ++bit) bits.push_back((advice.witness >> bit) & 1u);
  return bits;
}

std::vector<bool> SymRpls::verify(const graph::Graph& g,
                                  const std::vector<SymLcpAdvice>& advice,
                                  util::Rng& rng) const {
  const std::size_t n = g.numVertices();
  std::vector<bool> ok(n, true);

  // Precompute each label's encoding once.
  std::vector<std::vector<bool>> encoded(n);
  for (graph::Vertex v = 0; v < n; ++v) encoded[v] = encodeLabel(advice[v], n);
  if (!encoded.empty() && encoded[0].size() > family_.dimension()) {
    throw std::invalid_argument("SymRpls: family dimension too small for labels");
  }

  // Labels re-encoded as bitsets once: the batch path hashes them as
  // hashBits inputs (coefficient-1 positions, identical residues to
  // hashSparse over the same set positions).
  const bool useBatch = hash::batchEnabled();
  std::vector<util::DynBitset> encodedBits;
  if (useBatch) {
    encodedBits.reserve(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      util::DynBitset bits(encoded[v].size());
      for (std::size_t i = 0; i < encoded[v].size(); ++i) {
        if (encoded[v][i]) bits.set(i);
      }
      encodedBits.push_back(std::move(bits));
    }
  }
  hash::BatchLinearHashEvaluator batch;
  std::vector<util::DynBitset> neighborhood;
  std::vector<util::BigUInt> prints;

  // Evaluator and entry buffer hoisted out of the per-node loop: each node's
  // seed fingerprints its own label plus every neighbor's, so the rebind
  // cost amortizes over the neighborhood.
  hash::LinearHashEvaluator evaluator;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  auto fingerprint = [&](const util::BigUInt& seed, const std::vector<bool>& bits) {
    entries.clear();
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) entries.push_back({i, 1});
    }
    evaluator.rebind(family_.prime(), family_.dimension(), seed);
    return evaluator.hashSparse(entries);
  };

  for (graph::Vertex v = 0; v < n; ++v) {
    // (a) Randomized label comparison: v draws a private seed, fingerprints
    // its own label, and compares against each neighbor's fingerprint under
    // the same seed (v sends the seed + its fingerprint; O(log n) bits).
    util::Rng nodeRng = rng.split(v);
    util::BigUInt seed = family_.randomIndex(nodeRng);
    bool consistent = true;
    if (useBatch) {
      // One seed x the closed neighborhood's labels in a single batch call
      // over the shared power table (prints[0] is v's own label).
      neighborhood.clear();
      neighborhood.reserve(n);
      neighborhood.push_back(encodedBits[v]);
      g.row(v).forEachSet([&](std::size_t u) {
        neighborhood.push_back(encodedBits[u]);
      });
      batch.rebind(family_.prime(), family_.dimension(), seed);
      batch.hashBitsMany(neighborhood, prints);
      for (std::size_t i = 1; i < prints.size(); ++i) {
        if (!(prints[i] == prints[0])) consistent = false;
      }
    } else {
      util::BigUInt own = fingerprint(seed, encoded[v]);
      g.row(v).forEachSet([&](std::size_t u) {
        if (!(fingerprint(seed, encoded[u]) == own)) consistent = false;
      });
    }
    if (!consistent) {
      ok[v] = false;
      continue;
    }
    // (b) Own-row endorsement and (c) local automorphism verification reuse
    // the deterministic LCP logic on v's own label (no communication).
    const SymLcpAdvice& label = advice[v];
    bool shapeOk = label.matrixRows.size() == n && label.rho.size() == n;
    for (std::size_t u = 0; shapeOk && u < n; ++u) {
      if (label.matrixRows[u].size() != n) shapeOk = false;
    }
    if (!shapeOk || label.matrixRows[v] != g.row(v) ||
        !graph::isPermutation(label.rho, n) || label.witness >= n ||
        label.rho[label.witness] == label.witness) {
      ok[v] = false;
      continue;
    }
    bool automorphism = true;
    for (graph::Vertex u = 0; u < n && automorphism; ++u) {
      if (graph::Graph::imageOf(label.matrixRows[u], label.rho) !=
          label.matrixRows[label.rho[u]]) {
        automorphism = false;
      }
    }
    if (!automorphism) ok[v] = false;
  }
  return ok;
}

bool SymRpls::accepts(const graph::Graph& g, const std::vector<SymLcpAdvice>& advice,
                      util::Rng& rng) const {
  auto decisions = verify(g, advice, rng);
  for (bool d : decisions) {
    if (!d) return false;
  }
  return !decisions.empty();
}

SymRplsCosts SymRpls::costs(std::size_t n) const {
  SymRplsCosts costs;
  costs.adviceBitsPerNode = SymLcp::adviceBitsPerNode(n);
  // Seed + fingerprint across each edge.
  costs.verificationBitsPerEdge = family_.seedBits() + family_.valueBits();
  return costs;
}

SymRpls makeSymRpls(std::size_t n, util::Rng& rng) {
  const unsigned idBits = util::bitsFor(n);
  std::uint64_t labelBits = n * n + n * idBits + idBits;
  // Prime ~ n * labelBits * 2^10 keeps per-label collision prob <= 2^-10/n.
  util::BigUInt lo = util::BigUInt{labelBits} * util::BigUInt{n} * util::BigUInt{1024};
  util::BigUInt prime = util::findPrimeInRange(lo, lo * util::BigUInt{4}, rng);
  return SymRpls(hash::LinearHashFamily(std::move(prime), labelBits));
}

}  // namespace dip::pls
