#include "pls/sym_lcp.hpp"

#include "graph/isomorphism.hpp"
#include "util/bitio.hpp"

namespace dip::pls {

std::optional<SymLcpAdvice> SymLcp::honestAdvice(const graph::Graph& g) {
  auto rho = graph::findNontrivialAutomorphism(g);
  if (!rho) return std::nullopt;
  SymLcpAdvice advice;
  advice.matrixRows.reserve(g.numVertices());
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    advice.matrixRows.push_back(g.row(v));
  }
  advice.rho = *rho;
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    if ((*rho)[v] != v) {
      advice.witness = v;
      break;
    }
  }
  return advice;
}

std::vector<bool> SymLcp::verify(const graph::Graph& g,
                                 const std::vector<SymLcpAdvice>& advice) {
  const std::size_t n = g.numVertices();
  std::vector<bool> ok(n, true);
  for (graph::Vertex v = 0; v < n; ++v) {
    const SymLcpAdvice& label = advice[v];
    // (a) Shape and own-row endorsement.
    bool shapeOk = label.matrixRows.size() == n && label.rho.size() == n;
    for (std::size_t u = 0; shapeOk && u < n; ++u) {
      if (label.matrixRows[u].size() != n) shapeOk = false;
    }
    if (!shapeOk || label.matrixRows[v] != g.row(v)) {
      ok[v] = false;
      continue;
    }
    // (b) Neighbor consistency.
    bool consistent = true;
    g.forEachNeighbor(v, [&](graph::Vertex u) {
      if (!(advice[u] == label)) consistent = false;
    });
    if (!consistent) {
      ok[v] = false;
      continue;
    }
    // (c) rho is a non-trivial automorphism of the claimed matrix.
    if (!graph::isPermutation(label.rho, n) || label.witness >= n ||
        label.rho[label.witness] == label.witness) {
      ok[v] = false;
      continue;
    }
    bool automorphism = true;
    for (graph::Vertex u = 0; u < n && automorphism; ++u) {
      if (graph::Graph::imageOf(label.matrixRows[u], label.rho) !=
          label.matrixRows[label.rho[u]]) {
        automorphism = false;
      }
    }
    if (!automorphism) ok[v] = false;
  }
  return ok;
}

bool SymLcp::accepts(const graph::Graph& g, const std::vector<SymLcpAdvice>& advice) {
  auto decisions = verify(g, advice);
  for (bool d : decisions) {
    if (!d) return false;
  }
  return !decisions.empty();
}

std::size_t SymLcp::adviceBitsPerNode(std::size_t n) {
  unsigned idBits = util::bitsFor(n);
  return n * n + n * static_cast<std::size_t>(idBits) + idBits;
}

}  // namespace dip::pls
