file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_gni.dir/bench_e5_gni.cpp.o"
  "CMakeFiles/bench_e5_gni.dir/bench_e5_gni.cpp.o.d"
  "bench_e5_gni"
  "bench_e5_gni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_gni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
