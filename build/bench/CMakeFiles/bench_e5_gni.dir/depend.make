# Empty dependencies file for bench_e5_gni.
# This may be replaced when dependencies are built.
