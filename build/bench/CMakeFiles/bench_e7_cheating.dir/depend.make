# Empty dependencies file for bench_e7_cheating.
# This may be replaced when dependencies are built.
