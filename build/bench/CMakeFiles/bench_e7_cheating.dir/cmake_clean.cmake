file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_cheating.dir/bench_e7_cheating.cpp.o"
  "CMakeFiles/bench_e7_cheating.dir/bench_e7_cheating.cpp.o.d"
  "bench_e7_cheating"
  "bench_e7_cheating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_cheating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
