# Empty compiler generated dependencies file for bench_e1_sym_dmam.
# This may be replaced when dependencies are built.
