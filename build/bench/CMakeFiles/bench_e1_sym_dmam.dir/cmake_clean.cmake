file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_sym_dmam.dir/bench_e1_sym_dmam.cpp.o"
  "CMakeFiles/bench_e1_sym_dmam.dir/bench_e1_sym_dmam.cpp.o.d"
  "bench_e1_sym_dmam"
  "bench_e1_sym_dmam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_sym_dmam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
