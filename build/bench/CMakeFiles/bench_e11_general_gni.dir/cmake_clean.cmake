file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_general_gni.dir/bench_e11_general_gni.cpp.o"
  "CMakeFiles/bench_e11_general_gni.dir/bench_e11_general_gni.cpp.o.d"
  "bench_e11_general_gni"
  "bench_e11_general_gni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_general_gni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
