# Empty compiler generated dependencies file for bench_e11_general_gni.
# This may be replaced when dependencies are built.
