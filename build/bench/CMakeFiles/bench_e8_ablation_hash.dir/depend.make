# Empty dependencies file for bench_e8_ablation_hash.
# This may be replaced when dependencies are built.
