file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_ablation_hash.dir/bench_e8_ablation_hash.cpp.o"
  "CMakeFiles/bench_e8_ablation_hash.dir/bench_e8_ablation_hash.cpp.o.d"
  "bench_e8_ablation_hash"
  "bench_e8_ablation_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_ablation_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
