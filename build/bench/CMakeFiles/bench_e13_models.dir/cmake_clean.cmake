file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_models.dir/bench_e13_models.cpp.o"
  "CMakeFiles/bench_e13_models.dir/bench_e13_models.cpp.o.d"
  "bench_e13_models"
  "bench_e13_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
