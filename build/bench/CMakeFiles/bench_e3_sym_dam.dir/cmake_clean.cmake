file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_sym_dam.dir/bench_e3_sym_dam.cpp.o"
  "CMakeFiles/bench_e3_sym_dam.dir/bench_e3_sym_dam.cpp.o.d"
  "bench_e3_sym_dam"
  "bench_e3_sym_dam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_sym_dam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
