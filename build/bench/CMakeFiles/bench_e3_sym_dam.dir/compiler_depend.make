# Empty compiler generated dependencies file for bench_e3_sym_dam.
# This may be replaced when dependencies are built.
