# Empty dependencies file for bench_e2_separation.
# This may be replaced when dependencies are built.
