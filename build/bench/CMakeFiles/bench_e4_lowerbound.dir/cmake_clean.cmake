file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_lowerbound.dir/bench_e4_lowerbound.cpp.o"
  "CMakeFiles/bench_e4_lowerbound.dir/bench_e4_lowerbound.cpp.o.d"
  "bench_e4_lowerbound"
  "bench_e4_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
