file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_sym_input.dir/bench_e12_sym_input.cpp.o"
  "CMakeFiles/bench_e12_sym_input.dir/bench_e12_sym_input.cpp.o.d"
  "bench_e12_sym_input"
  "bench_e12_sym_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_sym_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
