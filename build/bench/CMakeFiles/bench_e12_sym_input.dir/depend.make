# Empty dependencies file for bench_e12_sym_input.
# This may be replaced when dependencies are built.
