# Empty compiler generated dependencies file for bench_e10_packing_demo.
# This may be replaced when dependencies are built.
