file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_packing_demo.dir/bench_e10_packing_demo.cpp.o"
  "CMakeFiles/bench_e10_packing_demo.dir/bench_e10_packing_demo.cpp.o.d"
  "bench_e10_packing_demo"
  "bench_e10_packing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_packing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
