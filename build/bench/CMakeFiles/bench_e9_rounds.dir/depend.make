# Empty dependencies file for bench_e9_rounds.
# This may be replaced when dependencies are built.
