# Empty dependencies file for bench_e6_hash.
# This may be replaced when dependencies are built.
