file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_hash.dir/bench_e6_hash.cpp.o"
  "CMakeFiles/bench_e6_hash.dir/bench_e6_hash.cpp.o.d"
  "bench_e6_hash"
  "bench_e6_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
