# Empty dependencies file for dip_hash.
# This may be replaced when dependencies are built.
