file(REMOVE_RECURSE
  "libdip_hash.a"
)
