file(REMOVE_RECURSE
  "CMakeFiles/dip_hash.dir/distributed_seed.cpp.o"
  "CMakeFiles/dip_hash.dir/distributed_seed.cpp.o.d"
  "CMakeFiles/dip_hash.dir/eps_api.cpp.o"
  "CMakeFiles/dip_hash.dir/eps_api.cpp.o.d"
  "CMakeFiles/dip_hash.dir/linear_hash.cpp.o"
  "CMakeFiles/dip_hash.dir/linear_hash.cpp.o.d"
  "libdip_hash.a"
  "libdip_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
