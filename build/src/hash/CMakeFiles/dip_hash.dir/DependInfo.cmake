
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/distributed_seed.cpp" "src/hash/CMakeFiles/dip_hash.dir/distributed_seed.cpp.o" "gcc" "src/hash/CMakeFiles/dip_hash.dir/distributed_seed.cpp.o.d"
  "/root/repo/src/hash/eps_api.cpp" "src/hash/CMakeFiles/dip_hash.dir/eps_api.cpp.o" "gcc" "src/hash/CMakeFiles/dip_hash.dir/eps_api.cpp.o.d"
  "/root/repo/src/hash/linear_hash.cpp" "src/hash/CMakeFiles/dip_hash.dir/linear_hash.cpp.o" "gcc" "src/hash/CMakeFiles/dip_hash.dir/linear_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
