file(REMOVE_RECURSE
  "CMakeFiles/dip_net.dir/spanning.cpp.o"
  "CMakeFiles/dip_net.dir/spanning.cpp.o.d"
  "CMakeFiles/dip_net.dir/transcript.cpp.o"
  "CMakeFiles/dip_net.dir/transcript.cpp.o.d"
  "libdip_net.a"
  "libdip_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
