# Empty dependencies file for dip_net.
# This may be replaced when dependencies are built.
