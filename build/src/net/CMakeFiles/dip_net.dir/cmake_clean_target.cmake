file(REMOVE_RECURSE
  "libdip_net.a"
)
