# Empty compiler generated dependencies file for dip_lb.
# This may be replaced when dependencies are built.
