file(REMOVE_RECURSE
  "libdip_lb.a"
)
