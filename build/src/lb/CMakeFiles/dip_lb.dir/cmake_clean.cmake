file(REMOVE_RECURSE
  "CMakeFiles/dip_lb.dir/census.cpp.o"
  "CMakeFiles/dip_lb.dir/census.cpp.o.d"
  "CMakeFiles/dip_lb.dir/packing.cpp.o"
  "CMakeFiles/dip_lb.dir/packing.cpp.o.d"
  "CMakeFiles/dip_lb.dir/simple_protocol.cpp.o"
  "CMakeFiles/dip_lb.dir/simple_protocol.cpp.o.d"
  "libdip_lb.a"
  "libdip_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
