file(REMOVE_RECURSE
  "CMakeFiles/dip_pls.dir/gni_fullinfo.cpp.o"
  "CMakeFiles/dip_pls.dir/gni_fullinfo.cpp.o.d"
  "CMakeFiles/dip_pls.dir/sym_lcp.cpp.o"
  "CMakeFiles/dip_pls.dir/sym_lcp.cpp.o.d"
  "CMakeFiles/dip_pls.dir/sym_rpls.cpp.o"
  "CMakeFiles/dip_pls.dir/sym_rpls.cpp.o.d"
  "libdip_pls.a"
  "libdip_pls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_pls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
