file(REMOVE_RECURSE
  "libdip_pls.a"
)
