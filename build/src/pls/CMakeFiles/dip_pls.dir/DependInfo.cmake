
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pls/gni_fullinfo.cpp" "src/pls/CMakeFiles/dip_pls.dir/gni_fullinfo.cpp.o" "gcc" "src/pls/CMakeFiles/dip_pls.dir/gni_fullinfo.cpp.o.d"
  "/root/repo/src/pls/sym_lcp.cpp" "src/pls/CMakeFiles/dip_pls.dir/sym_lcp.cpp.o" "gcc" "src/pls/CMakeFiles/dip_pls.dir/sym_lcp.cpp.o.d"
  "/root/repo/src/pls/sym_rpls.cpp" "src/pls/CMakeFiles/dip_pls.dir/sym_rpls.cpp.o" "gcc" "src/pls/CMakeFiles/dip_pls.dir/sym_rpls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
