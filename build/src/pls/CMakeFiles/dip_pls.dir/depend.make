# Empty dependencies file for dip_pls.
# This may be replaced when dependencies are built.
