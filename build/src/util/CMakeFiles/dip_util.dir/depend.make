# Empty dependencies file for dip_util.
# This may be replaced when dependencies are built.
