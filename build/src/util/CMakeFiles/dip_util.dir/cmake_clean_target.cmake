file(REMOVE_RECURSE
  "libdip_util.a"
)
