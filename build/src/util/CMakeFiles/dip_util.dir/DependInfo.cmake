
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/biguint.cpp" "src/util/CMakeFiles/dip_util.dir/biguint.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/biguint.cpp.o.d"
  "/root/repo/src/util/bitio.cpp" "src/util/CMakeFiles/dip_util.dir/bitio.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/bitio.cpp.o.d"
  "/root/repo/src/util/bitset.cpp" "src/util/CMakeFiles/dip_util.dir/bitset.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/bitset.cpp.o.d"
  "/root/repo/src/util/mathutil.cpp" "src/util/CMakeFiles/dip_util.dir/mathutil.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/mathutil.cpp.o.d"
  "/root/repo/src/util/montgomery.cpp" "src/util/CMakeFiles/dip_util.dir/montgomery.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/montgomery.cpp.o.d"
  "/root/repo/src/util/primes.cpp" "src/util/CMakeFiles/dip_util.dir/primes.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/primes.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/dip_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/dip_util.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
