file(REMOVE_RECURSE
  "CMakeFiles/dip_util.dir/biguint.cpp.o"
  "CMakeFiles/dip_util.dir/biguint.cpp.o.d"
  "CMakeFiles/dip_util.dir/bitio.cpp.o"
  "CMakeFiles/dip_util.dir/bitio.cpp.o.d"
  "CMakeFiles/dip_util.dir/bitset.cpp.o"
  "CMakeFiles/dip_util.dir/bitset.cpp.o.d"
  "CMakeFiles/dip_util.dir/mathutil.cpp.o"
  "CMakeFiles/dip_util.dir/mathutil.cpp.o.d"
  "CMakeFiles/dip_util.dir/montgomery.cpp.o"
  "CMakeFiles/dip_util.dir/montgomery.cpp.o.d"
  "CMakeFiles/dip_util.dir/primes.cpp.o"
  "CMakeFiles/dip_util.dir/primes.cpp.o.d"
  "CMakeFiles/dip_util.dir/rng.cpp.o"
  "CMakeFiles/dip_util.dir/rng.cpp.o.d"
  "libdip_util.a"
  "libdip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
