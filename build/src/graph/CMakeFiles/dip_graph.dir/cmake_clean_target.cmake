file(REMOVE_RECURSE
  "libdip_graph.a"
)
