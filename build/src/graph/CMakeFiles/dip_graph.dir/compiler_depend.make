# Empty compiler generated dependencies file for dip_graph.
# This may be replaced when dependencies are built.
