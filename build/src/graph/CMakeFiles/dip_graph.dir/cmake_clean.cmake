file(REMOVE_RECURSE
  "CMakeFiles/dip_graph.dir/builders.cpp.o"
  "CMakeFiles/dip_graph.dir/builders.cpp.o.d"
  "CMakeFiles/dip_graph.dir/canonical.cpp.o"
  "CMakeFiles/dip_graph.dir/canonical.cpp.o.d"
  "CMakeFiles/dip_graph.dir/catalog.cpp.o"
  "CMakeFiles/dip_graph.dir/catalog.cpp.o.d"
  "CMakeFiles/dip_graph.dir/generators.cpp.o"
  "CMakeFiles/dip_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dip_graph.dir/graph.cpp.o"
  "CMakeFiles/dip_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dip_graph.dir/graph6.cpp.o"
  "CMakeFiles/dip_graph.dir/graph6.cpp.o.d"
  "CMakeFiles/dip_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/dip_graph.dir/isomorphism.cpp.o.d"
  "libdip_graph.a"
  "libdip_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
