
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builders.cpp" "src/graph/CMakeFiles/dip_graph.dir/builders.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/builders.cpp.o.d"
  "/root/repo/src/graph/canonical.cpp" "src/graph/CMakeFiles/dip_graph.dir/canonical.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/canonical.cpp.o.d"
  "/root/repo/src/graph/catalog.cpp" "src/graph/CMakeFiles/dip_graph.dir/catalog.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/catalog.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/dip_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dip_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/graph6.cpp" "src/graph/CMakeFiles/dip_graph.dir/graph6.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/graph6.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/graph/CMakeFiles/dip_graph.dir/isomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/dip_graph.dir/isomorphism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
