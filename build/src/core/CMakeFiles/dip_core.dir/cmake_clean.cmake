file(REMOVE_RECURSE
  "CMakeFiles/dip_core.dir/api.cpp.o"
  "CMakeFiles/dip_core.dir/api.cpp.o.d"
  "CMakeFiles/dip_core.dir/dsym_dam.cpp.o"
  "CMakeFiles/dip_core.dir/dsym_dam.cpp.o.d"
  "CMakeFiles/dip_core.dir/gni_amam.cpp.o"
  "CMakeFiles/dip_core.dir/gni_amam.cpp.o.d"
  "CMakeFiles/dip_core.dir/gni_general.cpp.o"
  "CMakeFiles/dip_core.dir/gni_general.cpp.o.d"
  "CMakeFiles/dip_core.dir/gni_wire.cpp.o"
  "CMakeFiles/dip_core.dir/gni_wire.cpp.o.d"
  "CMakeFiles/dip_core.dir/sym_dam.cpp.o"
  "CMakeFiles/dip_core.dir/sym_dam.cpp.o.d"
  "CMakeFiles/dip_core.dir/sym_dmam.cpp.o"
  "CMakeFiles/dip_core.dir/sym_dmam.cpp.o.d"
  "CMakeFiles/dip_core.dir/sym_input.cpp.o"
  "CMakeFiles/dip_core.dir/sym_input.cpp.o.d"
  "CMakeFiles/dip_core.dir/wire.cpp.o"
  "CMakeFiles/dip_core.dir/wire.cpp.o.d"
  "libdip_core.a"
  "libdip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
