file(REMOVE_RECURSE
  "libdip_core.a"
)
