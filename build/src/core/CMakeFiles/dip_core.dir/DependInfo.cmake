
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/dip_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/api.cpp.o.d"
  "/root/repo/src/core/dsym_dam.cpp" "src/core/CMakeFiles/dip_core.dir/dsym_dam.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/dsym_dam.cpp.o.d"
  "/root/repo/src/core/gni_amam.cpp" "src/core/CMakeFiles/dip_core.dir/gni_amam.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/gni_amam.cpp.o.d"
  "/root/repo/src/core/gni_general.cpp" "src/core/CMakeFiles/dip_core.dir/gni_general.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/gni_general.cpp.o.d"
  "/root/repo/src/core/gni_wire.cpp" "src/core/CMakeFiles/dip_core.dir/gni_wire.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/gni_wire.cpp.o.d"
  "/root/repo/src/core/sym_dam.cpp" "src/core/CMakeFiles/dip_core.dir/sym_dam.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/sym_dam.cpp.o.d"
  "/root/repo/src/core/sym_dmam.cpp" "src/core/CMakeFiles/dip_core.dir/sym_dmam.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/sym_dmam.cpp.o.d"
  "/root/repo/src/core/sym_input.cpp" "src/core/CMakeFiles/dip_core.dir/sym_input.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/sym_input.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/dip_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/dip_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dip_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pls/CMakeFiles/dip_pls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
