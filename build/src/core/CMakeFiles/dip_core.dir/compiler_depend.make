# Empty compiler generated dependencies file for dip_core.
# This may be replaced when dependencies are built.
