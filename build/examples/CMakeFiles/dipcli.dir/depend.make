# Empty dependencies file for dipcli.
# This may be replaced when dependencies are built.
