
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dipcli.cpp" "examples/CMakeFiles/dipcli.dir/dipcli.cpp.o" "gcc" "examples/CMakeFiles/dipcli.dir/dipcli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dip_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/dip_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pls/CMakeFiles/dip_pls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
