file(REMOVE_RECURSE
  "CMakeFiles/dipcli.dir/dipcli.cpp.o"
  "CMakeFiles/dipcli.dir/dipcli.cpp.o.d"
  "dipcli"
  "dipcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dipcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
