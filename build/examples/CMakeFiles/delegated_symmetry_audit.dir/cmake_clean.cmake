file(REMOVE_RECURSE
  "CMakeFiles/delegated_symmetry_audit.dir/delegated_symmetry_audit.cpp.o"
  "CMakeFiles/delegated_symmetry_audit.dir/delegated_symmetry_audit.cpp.o.d"
  "delegated_symmetry_audit"
  "delegated_symmetry_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegated_symmetry_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
