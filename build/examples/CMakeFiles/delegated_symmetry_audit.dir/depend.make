# Empty dependencies file for delegated_symmetry_audit.
# This may be replaced when dependencies are built.
