file(REMOVE_RECURSE
  "CMakeFiles/social_graph_distinction.dir/social_graph_distinction.cpp.o"
  "CMakeFiles/social_graph_distinction.dir/social_graph_distinction.cpp.o.d"
  "social_graph_distinction"
  "social_graph_distinction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_graph_distinction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
