# Empty dependencies file for social_graph_distinction.
# This may be replaced when dependencies are built.
