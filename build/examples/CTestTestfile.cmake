# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "12")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_separation "/root/repo/build/examples/separation_demo" "8")
set_tests_properties(example_separation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_zoo "/root/repo/build/examples/model_zoo")
set_tests_properties(example_model_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dipcli_cost "/root/repo/build/examples/dipcli" "cost" "--n" "32")
set_tests_properties(example_dipcli_cost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dipcli_census "/root/repo/build/examples/dipcli" "census" "--n" "5")
set_tests_properties(example_dipcli_census PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
