
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/amplify_test.cpp" "tests/CMakeFiles/dip_tests.dir/amplify_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/amplify_test.cpp.o.d"
  "/root/repo/tests/api_test.cpp" "tests/CMakeFiles/dip_tests.dir/api_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/api_test.cpp.o.d"
  "/root/repo/tests/biguint_vectors_test.cpp" "tests/CMakeFiles/dip_tests.dir/biguint_vectors_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/biguint_vectors_test.cpp.o.d"
  "/root/repo/tests/bitio_fuzz_test.cpp" "tests/CMakeFiles/dip_tests.dir/bitio_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/bitio_fuzz_test.cpp.o.d"
  "/root/repo/tests/canonical_test.cpp" "tests/CMakeFiles/dip_tests.dir/canonical_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/canonical_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/dip_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/distributed_seed_test.cpp" "tests/CMakeFiles/dip_tests.dir/distributed_seed_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/distributed_seed_test.cpp.o.d"
  "/root/repo/tests/dsym_test.cpp" "tests/CMakeFiles/dip_tests.dir/dsym_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/dsym_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/dip_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/gni_general_test.cpp" "tests/CMakeFiles/dip_tests.dir/gni_general_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/gni_general_test.cpp.o.d"
  "/root/repo/tests/gni_test.cpp" "tests/CMakeFiles/dip_tests.dir/gni_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/gni_test.cpp.o.d"
  "/root/repo/tests/gni_wire_test.cpp" "tests/CMakeFiles/dip_tests.dir/gni_wire_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/gni_wire_test.cpp.o.d"
  "/root/repo/tests/graph6_test.cpp" "tests/CMakeFiles/dip_tests.dir/graph6_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/graph6_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/dip_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/hash_test.cpp" "tests/CMakeFiles/dip_tests.dir/hash_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/hash_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/dip_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/isomorphism_test.cpp" "tests/CMakeFiles/dip_tests.dir/isomorphism_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/isomorphism_test.cpp.o.d"
  "/root/repo/tests/lb_test.cpp" "tests/CMakeFiles/dip_tests.dir/lb_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/lb_test.cpp.o.d"
  "/root/repo/tests/locality_test.cpp" "tests/CMakeFiles/dip_tests.dir/locality_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/locality_test.cpp.o.d"
  "/root/repo/tests/montgomery_test.cpp" "tests/CMakeFiles/dip_tests.dir/montgomery_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/montgomery_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/dip_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/pls_test.cpp" "tests/CMakeFiles/dip_tests.dir/pls_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/pls_test.cpp.o.d"
  "/root/repo/tests/protocol_sweep_test.cpp" "tests/CMakeFiles/dip_tests.dir/protocol_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/protocol_sweep_test.cpp.o.d"
  "/root/repo/tests/rpls_test.cpp" "tests/CMakeFiles/dip_tests.dir/rpls_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/rpls_test.cpp.o.d"
  "/root/repo/tests/sym_dam_test.cpp" "tests/CMakeFiles/dip_tests.dir/sym_dam_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/sym_dam_test.cpp.o.d"
  "/root/repo/tests/sym_dmam_test.cpp" "tests/CMakeFiles/dip_tests.dir/sym_dmam_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/sym_dmam_test.cpp.o.d"
  "/root/repo/tests/sym_input_test.cpp" "tests/CMakeFiles/dip_tests.dir/sym_input_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/sym_input_test.cpp.o.d"
  "/root/repo/tests/util_biguint_test.cpp" "tests/CMakeFiles/dip_tests.dir/util_biguint_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/util_biguint_test.cpp.o.d"
  "/root/repo/tests/util_misc_test.cpp" "tests/CMakeFiles/dip_tests.dir/util_misc_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/util_misc_test.cpp.o.d"
  "/root/repo/tests/wire_test.cpp" "tests/CMakeFiles/dip_tests.dir/wire_test.cpp.o" "gcc" "tests/CMakeFiles/dip_tests.dir/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dip_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/dip_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pls/CMakeFiles/dip_pls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
