# Empty compiler generated dependencies file for dip_tests.
# This may be replaced when dependencies are built.
